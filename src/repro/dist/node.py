"""The worker node: one host's share of a distributed grid run.

A :class:`NodeServer` is deliberately dumb.  It owns no shard map, no
membership view and no opinion about placement — it executes whatever
content-addressed cell batches the coordinator posts at it, through the
ordinary single-machine :class:`~repro.exec.engine.ExecutionEngine`
against the shared :class:`~repro.experiments.cache.ResultStore`, and
journals every transition to its own JSONL file.  All the distributed
smarts (routing, liveness, rebalancing, merging) live in the
coordinator; keeping nodes stateless is what makes killing one safe —
nothing is lost that the store and the journals cannot reconstruct.

HTTP surface (same minimal stack as the service —
:mod:`repro.service.http`):

========  ========================  ==================================
Method    Path                      Meaning
========  ========================  ==================================
GET       ``/healthz``              liveness; ``?deep=1`` adds queue
                                    depth, batch counters and a store
                                    writability probe (ok/degraded)
POST      ``/v1/cells``             a batch of cell payloads; 202 once
                                    enqueued for the executor thread
POST      ``/v1/run-marker``        append a coordinator run marker to
                                    the journal; the coordinator's
                                    merger only merges events after it
                                    (journals persist across runs)
GET       ``/v1/journal/events``    NDJSON of this node's journal with
                                    a monotone ``seq`` per event;
                                    ``?after=SEQ`` resumes a cursor,
                                    ``?timeout=S`` bounds the stream
POST      ``/v1/shutdown``          graceful stop after current batch
========  ========================  ==================================

The event stream's ``seq`` is simply the event's ordinal in the node's
journal.  Because the journal is append-only (torn tails are healed at
the line boundary before anything new lands), the ordinal is stable
across reconnects: a coordinator that lost its stream reconnects with
``?after=<last seq it merged>`` and misses nothing, duplicates nothing.

Fault injection: every request handled and every batch executed passes
a :func:`repro.faults.fire_node` checkpoint, so a seeded plan can crash
the node process (``node-crash:node`` → exit 23, indistinguishable from
SIGKILL as far as the cluster is concerned) or wedge it
(``node-hang:node``) at a deterministic point.  Chaos tests therefore
run nodes as subprocesses (:mod:`repro.tools.dist_cli`), not threads.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import __version__, faults
from repro.exec.engine import ExecutionEngine
from repro.exec.jobs import JobSpec
from repro.exec.journal import JournalTail, RunJournal
from repro.experiments.cache import ResultStore
from repro.service.http import (
    HttpError,
    Request,
    json_bytes,
    read_request,
    render_response,
)
from repro.service.manager import probe_writable

__all__ = ["NodeServer", "NodeHandle", "start_node_in_background"]

#: Seconds between polls while the journal stream is idle.
_STREAM_POLL = 0.05

#: Default bound on one journal stream's lifetime (the coordinator
#: reconnects with its cursor, so short streams cost nothing).
_DEFAULT_STREAM_TIMEOUT = 30.0


class NodeServer:
    """One worker node: batch executor + journal streamer.

    Args:
        data_dir: This node's scratch directory (its journal lands at
            ``<data_dir>/journal.jsonl``).
        store_dir: The *shared* result store all nodes and the
            coordinator mount — the data plane.
        host/port: Bind address (0 picks a free port).
        name: The node's advertised identity; defaults to ``host:port``
            once bound.  The coordinator addresses and attributes work
            by this name, and fault sites match against it.
        workers: Worker processes per engine run on this node.
        retries: Per-cell retry budget (the engine's, local to the node).
        timeout: Per-cell attempt timeout in seconds.
        speculate: Allow neighbor speculation in worker suites.
    """

    def __init__(
        self,
        data_dir: str | Path,
        store_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
        workers: int = 1,
        retries: int = 2,
        timeout: float | None = None,
        speculate: bool = True,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = port
        self._name = name
        self.workers = int(workers)
        self.retries = int(retries)
        self.timeout = timeout
        self.speculate = bool(speculate)
        self.journal_path = self.data_dir / "journal.jsonl"
        self._batches: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._executing = False
        self._batches_done = 0
        self._cells_done = 0
        self._stopping = threading.Event()
        self._server: asyncio.AbstractServer | None = None
        self._executor = threading.Thread(
            target=self._execute_batches, name="repro-node-exec", daemon=True)
        self._executor.start()

    @property
    def name(self) -> str:
        return self._name or f"{self.host}:{self.port}"

    # -- batch execution -------------------------------------------------

    def _execute_batches(self) -> None:
        """The executor thread: drain batches serially through the engine.

        Serial per node by design — parallelism lives inside each engine
        run (``workers``) and across nodes, so one node never has two
        engine runs racing on its journal stream.
        """
        while True:
            try:
                specs = self._batches.get(timeout=0.1)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            with self._lock:
                self._executing = True
            try:
                faults.fire_node(self.name)
                engine = ExecutionEngine(
                    workers=self.workers,
                    timeout=self.timeout if self.workers > 1 else None,
                    max_retries=self.retries,
                    store=ResultStore(self.store_dir),
                    journal_path=self.journal_path,
                    speculate=self.speculate,
                )
                report = engine.run(specs)
                with self._lock:
                    self._cells_done += len(report.results)
            except Exception as exc:
                # An engine blow-up must not kill the executor thread:
                # journal it (the coordinator sees batch-failed and can
                # re-route) and keep serving.
                with RunJournal(self.journal_path) as journal:
                    journal.record("batch-failed", node=self.name,
                                   error=f"{type(exc).__name__}: {exc}")
            finally:
                with self._lock:
                    self._executing = False
                    self._batches_done += 1

    def enqueue(self, specs: list[JobSpec]) -> int:
        """Queue one batch for the executor; returns the queue depth."""
        self._batches.put(specs)
        return self._batches.qsize()

    # -- health ----------------------------------------------------------

    def health(self, deep: bool = False) -> dict:
        """The ``/healthz`` body (the coordinator's liveness probe)."""
        body = {"status": "ok", "node": self.name}
        if not deep:
            return body
        with self._lock:
            executing = self._executing
            batches_done = self._batches_done
            cells_done = self._cells_done
        store_writable = probe_writable(self.store_dir)
        body.update(
            status="ok" if store_writable else "degraded",
            queue_depth=self._batches.qsize(),
            executing=executing,
            batches_done=batches_done,
            cells_done=cells_done,
            store_writable=store_writable,
        )
        return body

    # -- HTTP ------------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def serve_forever(self) -> None:
        """Run until shut down (the ``repro-node`` CLI's main loop)."""
        server = await self.start()
        async with server:
            while not self._stopping.is_set():
                await asyncio.sleep(0.1)
        # Let the executor drain its current batch before exiting.
        self._executor.join(timeout=60)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer)
            except HttpError as exc:
                writer.write(render_response(
                    exc.status, json_bytes({"error": exc.message}),
                    headers=exc.headers))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:
                writer.write(render_response(500, json_bytes(
                    {"error": f"{type(exc).__name__}: {exc}"})))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        # The per-request fault checkpoint: a node-crash plan exits the
        # process here (the cluster sees connections drop — exactly what
        # a kill -9 looks like); a node-hang plan wedges the response
        # past the client's socket timeout.
        faults.fire_node(self.name)
        path, method = request.path, request.method
        if path in ("/healthz", "/v1/healthz"):
            if method != "GET":
                raise HttpError(405, "use GET")
            deep = request.query.get("deep") not in (None, "", "0")
            body = dict(self.health(deep=deep), version=__version__)
            writer.write(render_response(200, json_bytes(body)))
            return
        if path == "/v1/cells":
            if method != "POST":
                raise HttpError(405, "use POST")
            self._accept_cells(request, writer)
            return
        if path == "/v1/run-marker":
            if method != "POST":
                raise HttpError(405, "use POST")
            self._mark_run(request, writer)
            return
        if path == "/v1/journal/events":
            if method != "GET":
                raise HttpError(405, "use GET")
            await self._stream_journal(request, writer)
            return
        if path == "/v1/shutdown":
            if method != "POST":
                raise HttpError(405, "use POST")
            self._stopping.set()
            writer.write(render_response(200, json_bytes(
                {"status": "stopping", "node": self.name})))
            return
        raise HttpError(404, f"no route for {method} {path}")

    def _accept_cells(self, request: Request,
                      writer: asyncio.StreamWriter) -> None:
        """POST /v1/cells — parse payloads, enqueue one batch, 202.

        Accepting a batch twice is harmless: cells are content-addressed
        and the engine answers already-stored cells as cache-hits, so a
        coordinator that re-routes work this node already (or partially)
        did costs a store lookup per cell, not a recomputation.
        """
        document = request.json()
        cells = document.get("cells")
        if not isinstance(cells, list) or not cells:
            raise HttpError(400, "expected a non-empty 'cells' list")
        try:
            specs = [JobSpec.from_payload(payload) for payload in cells]
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad cell payload: {exc}")
        depth = self.enqueue(specs)
        body = {
            "accepted": len(specs),
            "node": self.name,
            "queue_depth": depth,
            "directory_version": document.get("directory_version"),
        }
        writer.write(render_response(202, json_bytes(body)))

    def _mark_run(self, request: Request,
                  writer: asyncio.StreamWriter) -> None:
        """POST /v1/run-marker — journal a coordinator run boundary.

        Node journals persist across coordinator runs (a long-lived
        node serves many).  The marker gives the coordinator's merger a
        sync point: events before it are a previous run's history and
        are never merged, so a stale ``failed`` from last week cannot
        poison today's run.  Appending is safe against a concurrent
        executor: both writers flush whole lines under ``O_APPEND``.
        """
        document = request.json()
        run = document.get("run")
        if not isinstance(run, str) or not run:
            raise HttpError(400, "expected a non-empty 'run' id")
        with RunJournal(self.journal_path) as journal:
            journal.record("coordinator-run", run=run, node=self.name)
        writer.write(render_response(200, json_bytes(
            {"status": "marked", "run": run, "node": self.name})))

    async def _stream_journal(self, request: Request,
                              writer: asyncio.StreamWriter) -> None:
        """GET /v1/journal/events — NDJSON with per-event ``seq``.

        The cursor protocol that makes coordinator merging loss-free:
        ``seq`` is the event's ordinal in this node's append-only
        journal, so it survives reconnects; the server replays from the
        top of the file (cheap — node journals are one run's events) and
        skips everything at or below ``after``.  Torn tails are never
        counted: :class:`JournalTail` only advances past complete lines,
        and the split-journal heal truncates *below* any counted line.
        """
        try:
            after = int(request.query.get("after", -1))
            timeout = float(request.query.get(
                "timeout", _DEFAULT_STREAM_TIMEOUT))
        except ValueError:
            raise HttpError(400, "after/timeout must be numbers")
        writer.write(render_response(
            200, content_type="application/x-ndjson", head_only=True))
        await writer.drain()
        tailer = JournalTail(self.journal_path)
        seq = -1
        deadline = time.monotonic() + timeout
        while True:
            events = tailer.poll()
            wrote = False
            for entry in events:
                seq += 1
                if seq <= after:
                    continue
                line = json.dumps(dict(entry, seq=seq), sort_keys=True)
                writer.write((line + "\n").encode("utf-8"))
                wrote = True
            if wrote:
                await writer.drain()
            if time.monotonic() >= deadline or self._stopping.is_set():
                return
            if not events:
                await asyncio.sleep(_STREAM_POLL)


@dataclass
class NodeHandle:
    """A node running on a daemon thread: its address and stop switch."""

    address: str
    node: NodeServer
    stop: Callable[[], None]
    thread: threading.Thread


def start_node_in_background(
    data_dir: str | Path,
    store_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    name: str | None = None,
    workers: int = 1,
    retries: int = 2,
    timeout: float | None = None,
    speculate: bool = True,
) -> NodeHandle:
    """Run a :class:`NodeServer` on a daemon thread (tests, benchmarks).

    Note in-process nodes share the test's fault plan *process*, so
    ``node-crash`` plans (which exit the process) belong to subprocess
    nodes only — see ``tests/dist/test_cluster.py``.
    """
    node = NodeServer(data_dir, store_dir, host=host, port=port, name=name,
                      workers=workers, retries=retries, timeout=timeout,
                      speculate=speculate)
    started = threading.Event()
    holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                bound = await node.start()
            except OSError as exc:
                holder["error"] = exc
                started.set()
                return
            holder["loop"] = asyncio.get_running_loop()
            stop_event = holder["stop_event"] = asyncio.Event()
            started.set()
            await stop_event.wait()
            bound.close()
            await bound.wait_closed()
            # Cancel connection handlers still streaming (a merger may
            # hold its journal stream open across our shutdown).
            others = [task for task in asyncio.all_tasks()
                      if task is not asyncio.current_task()]
            for task in others:
                task.cancel()
            await asyncio.gather(*others, return_exceptions=True)

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=runner, daemon=True, name="repro-node")
    thread.start()
    if not started.wait(10):
        raise RuntimeError("node did not start within 10s")
    if "error" in holder:
        raise RuntimeError(f"node failed to bind: {holder['error']}")

    def stop() -> None:
        node._stopping.set()
        loop = holder.get("loop")
        if loop is not None:
            loop.call_soon_threadsafe(holder["stop_event"].set)
        thread.join(10)

    return NodeHandle(address=f"{host}:{node.port}", node=node, stop=stop,
                      thread=thread)
