"""The partition directory: versioned, atomically-written shard→node map.

The directory is the cluster's single piece of coordination state: which
node owns which shard, and how many times ownership has changed.  It is
deliberately tiny — a JSON document (``repro-shards/v1``) written with
the same tmp→fsync→rename discipline every other artifact in this repo
uses (:func:`repro.util.atomicio.atomic_write_text`), so a reader always
sees either the previous complete map or the next complete map, never a
half-written one, even if the coordinator dies mid-rebalance.

Every mutation bumps ``version``.  Journal events and dispatch batches
carry the version they were routed under, so after a rebalance the
coordinator can tell stale attribution from current attribution without
any clocks or consensus: the directory is written by exactly one
coordinator, and nodes never read it (they execute whatever cells they
are handed — ownership is purely a routing concern).

Schema::

    {
      "schema": "repro-shards/v1",
      "version": 3,
      "num_shards": 64,
      "replicas": 64,
      "nodes": ["127.0.0.1:8301", "127.0.0.1:8302"],
      "owners": {"0": "127.0.0.1:8302", "1": "127.0.0.1:8301", ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dist.ring import (DEFAULT_NUM_SHARDS, DEFAULT_REPLICAS,
                             assign_shards, shard_of)
from repro.util.atomicio import atomic_write_text

__all__ = ["PartitionDirectory", "SCHEMA"]

SCHEMA = "repro-shards/v1"


class PartitionDirectory:
    """Versioned shard→node ownership, durably mirrored to one JSON file.

    Args:
        path: Where the map is persisted, or None for in-memory only
            (unit tests).
        num_shards: Fixed shard count; immutable for the directory's
            lifetime (cells hash to shards independently of the node
            set, so this never needs to change mid-run).
        replicas: Virtual ring points per node (see
            :mod:`repro.dist.ring`).
    """

    def __init__(self, path: str | Path | None = None, *,
                 num_shards: int = DEFAULT_NUM_SHARDS,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        self.path = Path(path) if path is not None else None
        self.num_shards = num_shards
        self.replicas = replicas
        self.version = 0
        self.nodes: list[str] = []
        self.owners: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "PartitionDirectory":
        """Read a persisted directory back (e.g. for ``repro-stats``)."""
        path = Path(path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        schema = doc.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"{path}: expected schema {SCHEMA!r}, got {schema!r}")
        directory = cls(path, num_shards=int(doc["num_shards"]),
                        replicas=int(doc.get("replicas", DEFAULT_REPLICAS)))
        directory.version = int(doc["version"])
        directory.nodes = list(doc["nodes"])
        directory.owners = {int(s): n for s, n in doc["owners"].items()}
        return directory

    def save(self) -> None:
        if self.path is None:
            return
        doc = {
            "schema": SCHEMA,
            "version": self.version,
            "num_shards": self.num_shards,
            "replicas": self.replicas,
            "nodes": self.nodes,
            "owners": {str(s): n for s, n in sorted(self.owners.items())},
        }
        atomic_write_text(self.path, json.dumps(doc, indent=2,
                                                sort_keys=True) + "\n",
                          fault_site=None)

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------

    def owner_of(self, job_id: str) -> str:
        """The node owning a content-addressed job id."""
        if not self.owners:
            raise RuntimeError("partition directory has no nodes")
        return self.owners[shard_of(job_id, self.num_shards)]

    def shards_of(self, node: str) -> list[int]:
        """The shards a node currently owns (sorted)."""
        return sorted(s for s, n in self.owners.items() if n == node)

    def rebalance(self, nodes: list[str] | set[str]) -> dict[int, str]:
        """Recompute ownership for a new node set; returns moved shards.

        The return value maps each shard that *changed hands* to its new
        owner — the rebalancer uses it to re-route only the cells whose
        shard actually moved.  Bumps ``version`` and persists, even when
        nothing moved (a join that takes no shards is still a membership
        change worth recording).
        """
        new_nodes = sorted(set(nodes))
        if not new_nodes:
            raise ValueError("cannot rebalance to an empty node set")
        new_owners = assign_shards(new_nodes, self.num_shards,
                                   replicas=self.replicas)
        moved = {
            shard: owner
            for shard, owner in new_owners.items()
            if self.owners.get(shard) != owner
        }
        self.nodes = new_nodes
        self.owners = new_owners
        self.version += 1
        self.save()
        return moved
