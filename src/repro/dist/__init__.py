"""Sharded distributed grid execution: coordinator, nodes, rebalancing.

The single-machine engine (:mod:`repro.exec`) completes a planned grid
of content-addressed cells on one host.  This package scales the same
grid across a cluster of worker *nodes* while holding the robustness
bar every prior layer enforced: **a chaos-faulted, node-killed,
rebalanced, resumed distributed run renders a report byte-identical to
the sequential single-machine baseline.**

The moving parts:

* :mod:`repro.dist.ring` — the consistent-hash ring mapping the cells'
  existing SHA-256 content addresses onto shards, and shards onto
  nodes, with minimal movement when the node set changes.
* :mod:`repro.dist.directory` — the partition directory: the versioned,
  atomically-written record of shard→node ownership.
* :mod:`repro.dist.node` — the worker-node HTTP server (``repro-node``):
  accepts cell batches, runs them through the ordinary
  :class:`~repro.exec.engine.ExecutionEngine` against the shared
  result store, journals every transition to its own JSONL segments,
  and streams those events back as NDJSON.
* :mod:`repro.dist.client` — the stdlib HTTP client the coordinator
  uses to talk to one node (dispatch, health, event streaming), with
  partition-fault injection and idempotent-GET retries.
* :mod:`repro.dist.coordinator` — the router/merger (``repro-coord``):
  plans cells, routes each to its owning node, merges every node's
  journal stream into one convergent run journal, watches node
  liveness, rebalances and re-routes when a node dies, and renders the
  final report from the shared store.

Results never travel over HTTP: nodes write them into the shared
content-addressed :class:`~repro.experiments.cache.ResultStore`
(verified, atomic, crash-safe — see ``docs/ROBUSTNESS.md``), so the
control plane carries only dispatch and journal events and every
transfer is idempotent.  See ``docs/DISTRIBUTION.md`` for the topology,
the failure matrix and the byte-identity argument.
"""

from repro.dist.client import NodeClient, NodeError
from repro.dist.coordinator import ClusterResult, DistributedCoordinator
from repro.dist.directory import PartitionDirectory
from repro.dist.node import NodeServer, start_node_in_background
from repro.dist.ring import DEFAULT_NUM_SHARDS, HashRing, shard_of

__all__ = [
    "ClusterResult",
    "DEFAULT_NUM_SHARDS",
    "DistributedCoordinator",
    "HashRing",
    "NodeClient",
    "NodeError",
    "NodeServer",
    "PartitionDirectory",
    "shard_of",
    "start_node_in_background",
]
