"""The coordinator's HTTP client for one worker node.

Same transport discipline as :class:`~repro.service.client.ServiceClient`
— stdlib ``http.client``, one connection per request against the node's
``Connection: close`` server — with two distributed-specific twists:

* **Partition injection.**  Every request first consults
  :func:`repro.faults.partitioned` (site ``link``, context
  ``"<node> <METHOD> <path>"``): a seeded ``partition:link`` plan makes
  the request fail exactly like a refused connection, and a ``times=N``
  budget models a partition that heals after N severed requests.  The
  retry and liveness layers above must ride this out — that is the
  point.
* **Retry asymmetry.**  Idempotent GETs (health, journal events) retry
  transient connection failures with the service client's bounded
  jittered backoff (:func:`~repro.service.client.retry_idempotent`).
  :meth:`submit_cells` does **not** retry at this layer even though a
  repeated batch would be harmless (cells are content-addressed; the
  node answers duplicates as cache-hits): a dispatch failure must
  surface to the router *immediately* so it can count the failure
  against the node's liveness and re-route, instead of burning the
  retry budget against a corpse.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Callable, Iterator, TypeVar

from repro import faults
from repro.service.client import retry_idempotent

__all__ = ["NodeClient", "NodeError", "NodeUnreachable"]

_T = TypeVar("_T")


class NodeError(Exception):
    """A node answered with a non-2xx status."""

    def __init__(self, node: str, status: int, message: str) -> None:
        super().__init__(f"node {node}: HTTP {status}: {message}")
        self.node = node
        self.status = status
        self.message = message


class NodeUnreachable(ConnectionError):
    """A node could not be reached (refused, reset, timed out, or an
    injected partition).  Subclasses ``ConnectionError`` so generic
    transport handling — including the retry helper — treats it
    uniformly."""

    def __init__(self, node: str, reason: str) -> None:
        super().__init__(f"node {node} unreachable: {reason}")
        self.node = node
        self.reason = reason


class NodeClient:
    """Talks to one :class:`~repro.dist.node.NodeServer`.

    Args:
        address: ``host:port`` — also the node's identity everywhere
            (ring membership, journal attribution, fault contexts).
        timeout: Per-request socket timeout.  Deliberately short by
            default: a wedged node (``node-hang``) must turn into a
            timely liveness failure, not a stalled coordinator.
        retries: Total attempts for idempotent GETs (1 disables retry).
        retry_backoff: Base backoff between those attempts, in seconds.
    """

    def __init__(self, address: str, *, timeout: float = 10.0,
                 retries: int = 3, retry_backoff: float = 0.05) -> None:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"node address must be host:port, got {address!r}")
        self.address = address
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)

    # -- transport -------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None,
                 timeout: float | None = None) -> tuple[int, bytes]:
        if faults.partitioned(f"{self.address} {method} {path}"):
            raise NodeUnreachable(self.address, "injected partition")
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                data = response.read()
            except socket.timeout as exc:
                raise NodeUnreachable(self.address, f"timed out: {exc}")
            except ConnectionError as exc:
                raise NodeUnreachable(self.address, str(exc))
            except OSError as exc:
                raise NodeUnreachable(self.address, str(exc))
            return response.status, data
        finally:
            connection.close()

    def _json(self, method: str, path: str,
              body: dict | None = None) -> dict:
        status, data = self._request(method, path, body)
        if status >= 400:
            try:
                message = json.loads(data.decode("utf-8")).get("error", "")
            except (UnicodeDecodeError, json.JSONDecodeError):
                message = data.decode("utf-8", errors="replace").strip()
            raise NodeError(self.address, status, message or "request failed")
        return json.loads(data.decode("utf-8"))

    def _retrying(self, request: Callable[[], _T], key: str) -> _T:
        return retry_idempotent(request, key=f"{self.address}{key}",
                                attempts=self.retries,
                                backoff=self.retry_backoff)

    # -- API -------------------------------------------------------------

    def health(self, *, deep: bool = False) -> dict:
        """GET /healthz (retried: probing liveness is idempotent)."""
        path = "/healthz?deep=1" if deep else "/healthz"
        return self._retrying(lambda: self._json("GET", path), key=path)

    def mark_run(self, run_id: str) -> dict:
        """POST /v1/run-marker — append this run's marker to the node's
        journal.  Everything before the marker is a previous run's
        history; the coordinator's mergers only merge events after it.
        Retried: re-marking is idempotent (a duplicate marker is inert —
        the merger syncs on the first match)."""
        return self._retrying(
            lambda: self._json("POST", "/v1/run-marker", {"run": run_id}),
            key="/v1/run-marker")

    def submit_cells(self, payloads: list[dict],
                     directory_version: int | None = None) -> dict:
        """POST /v1/cells — dispatch one batch (**never retried here**;
        see the module docstring for why failures surface immediately)."""
        body: dict = {"cells": payloads}
        if directory_version is not None:
            body["directory_version"] = directory_version
        return self._json("POST", "/v1/cells", body)

    def shutdown(self) -> dict:
        """POST /v1/shutdown — graceful stop after the current batch."""
        return self._json("POST", "/v1/shutdown")

    def events(self, *, after: int = -1,
               timeout: float = 10.0) -> Iterator[tuple[int, dict]]:
        """Stream the node's journal as ``(seq, event)`` pairs.

        One bounded stream: the server closes it after ``timeout``
        seconds; the caller reconnects with ``after=<last seq>`` to
        continue (the merger's loop does exactly that).  Torn NDJSON
        tails — a line cut mid-byte by a dying node — are simply
        dropped: the next reconnect replays from the cursor, so nothing
        is lost.  Establishing the stream is retried (nothing consumed
        yet); mid-stream failures end the iterator quietly for the same
        reason.
        """
        path = f"/v1/journal/events?after={after}&timeout={timeout:g}"
        if faults.partitioned(f"{self.address} GET {path}"):
            raise NodeUnreachable(self.address, "injected partition")

        def connect() -> tuple:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout + self.timeout)
            try:
                connection.request("GET", path)
                return connection, connection.getresponse()
            except BaseException:
                connection.close()
                raise

        connection, response = self._retrying(connect, key=path)
        try:
            if response.status >= 400:
                data = response.read()
                raise NodeError(self.address, response.status,
                                data.decode("utf-8", errors="replace"))
            buffer = b""
            while True:
                try:
                    # read1, not read: a plain read(n) on the buffered
                    # response blocks until n bytes or EOF, which would
                    # hold live events hostage until the stream closes.
                    chunk = response.read1(4096)
                except (socket.timeout, ConnectionError, OSError):
                    return  # cursor protocol makes reconnection loss-free
                if not chunk:
                    return
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        continue
                    if isinstance(entry, dict) and "seq" in entry:
                        seq = int(entry.pop("seq"))
                        yield seq, entry
        finally:
            connection.close()

    def wait_ready(self, *, timeout: float = 10.0,
                   poll: float = 0.05) -> bool:
        """Poll /healthz until the node answers (process startup)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self._json("GET", "/healthz").get("status") == "ok":
                    return True
            except (NodeUnreachable, NodeError, OSError, ValueError):
                pass
            time.sleep(poll)
        return False
