"""The run observer: one object wiring metrics, tracing and progress
into an engine run and materializing them in a run directory.

A :class:`RunObserver` owns the observability artifacts of one run
directory (conventionally the place the journal also lives)::

    <dir>/journal.jsonl       engine events   (written by the journal)
    <dir>/trace.jsonl         span records    (tracer; one line per span)
    <dir>/trace-chrome.json   Chrome trace-event export of trace.jsonl
    <dir>/metrics.json        metrics registry snapshot (deterministic)
    <dir>/metrics.prom        Prometheus textfile rendering

The engine talks to it through four hooks — :meth:`begin` (planned job
count known), :meth:`on_event` (every journal event; feeds the progress
meter and event counters), :meth:`job_finished` (per-job latency, the
worker's simulator-probe counters, and one workers x cells trace span)
and :meth:`run_ended` (summary gauges).  :meth:`finalize` writes the
exports; ``repro-stats`` reads them back.

Observation never alters results: the observer only listens, and the
report renderers never see it (asserted byte-for-byte by the CI
``observability`` job).
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressMeter
from repro.obs.spans import Tracer, get_tracer, read_spans, set_tracer, \
    write_chrome_trace
from repro.util.atomicio import atomic_write_text

__all__ = ["RunObserver", "METRICS_JSON", "METRICS_PROM", "TRACE_JSONL",
           "TRACE_CHROME"]

METRICS_JSON = "metrics.json"
METRICS_PROM = "metrics.prom"
TRACE_JSONL = "trace.jsonl"
TRACE_CHROME = "trace-chrome.json"


class RunObserver:
    """Bundle of a run's metrics registry, tracer and progress meter.

    Args:
        directory: Run directory for the artifacts (created if missing).
        metrics: Collect the metrics registry (and request simulator
            probes from engine workers).
        trace: Record spans to ``trace.jsonl`` + the Chrome export.
        progress: Drive a live TTY progress meter off journal events.
        stream: Progress output stream (default stderr).
        progress_enabled: Force the meter on/off (default: TTY detect).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        metrics: bool = True,
        trace: bool = True,
        progress: bool = False,
        stream: TextIO | None = None,
        progress_enabled: bool | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.registry: MetricsRegistry | None = (
            MetricsRegistry() if metrics else None
        )
        self.tracer: Tracer | None = (
            Tracer(self.directory / TRACE_JSONL) if trace else None
        )
        self._want_progress = bool(progress)
        self._stream = stream
        self._progress_enabled = progress_enabled
        self.meter: ProgressMeter | None = None
        self._installed_tracer = False
        self._finalized = False

    # -- engine hooks ----------------------------------------------------

    @property
    def want_sim_probe(self) -> bool:
        """Whether workers should run their simulations under a probe."""
        return self.registry is not None

    def install_tracer(self) -> None:
        """Install this run's tracer process-wide (idempotent).

        The engine does this at :meth:`begin`; callers who want stage
        spans *around* the engine run (the CLI's prefetch/render/export
        stages) install earlier.  A tracer someone else installed is
        left alone.
        """
        if self.tracer is not None and get_tracer() is None:
            set_tracer(self.tracer)
            self._installed_tracer = True

    def begin(self, total_jobs: int) -> None:
        """The run is planned: start progress, install the tracer."""
        if self._want_progress and self.meter is None:
            self.meter = ProgressMeter(
                total_jobs, stream=self._stream,
                enabled=self._progress_enabled,
            )
        self.install_tracer()

    def on_event(self, entry: dict) -> None:
        """Journal listener: progress + one counter per event kind."""
        if self.meter is not None:
            self.meter.update(entry)
        if self.registry is not None:
            event = entry.get("event")
            if event:
                self.registry.counter("engine_events", event=event).inc()
            kind = entry.get("kind")
            if event in ("retrying", "failed") and kind:
                self.registry.counter("engine_attempt_failures",
                                      kind=kind).inc()

    def job_finished(self, payload: dict, out: dict) -> None:
        """One job completed: latency, worker probe counters, job span."""
        duration = float(out.get("duration") or 0.0)
        if self.registry is not None:
            self.registry.histogram("job_seconds").observe(duration)
            sim = out.get("sim_metrics")
            if sim:
                for name, value in sim.items():
                    self.registry.counter(name).inc(value)
        if self.tracer is not None:
            started = out.get("t_start")
            if started is None:
                return
            self.tracer.add(
                "simulate_cell",
                ts=float(started),
                wall=duration,
                cpu=out.get("cpu"),
                pid=out.get("worker"),
                tid=0,
                args={
                    "label": payload.get("label"),
                    "attempt": out.get("attempt"),
                },
            )

    def run_ended(self, summary) -> None:
        """Record the run summary as gauges (engine calls this once)."""
        if self.registry is None or summary is None:
            return
        gauges = {
            "run_jobs_total": summary.total_jobs,
            "run_jobs_executed": summary.executed,
            "run_jobs_failed": summary.failed,
            "run_cache_hits": summary.cache_hits,
            "run_resumed": summary.resumed,
            "run_retries": summary.retries,
            "run_workers": summary.workers,
            "run_wall_seconds": summary.wall_seconds,
            "run_throughput_jobs_per_s": summary.throughput,
            "run_cache_hit_rate": summary.cache_hit_rate,
            "run_job_p50_seconds": summary.p50_seconds,
            "run_job_p95_seconds": summary.p95_seconds,
        }
        for name, value in gauges.items():
            self.registry.gauge(name).set(value)

    # -- materialization -------------------------------------------------

    def finalize(self) -> dict[str, Path]:
        """Write the exports, close everything; returns artifact paths.

        Idempotent — a second call rewrites the same artifacts from the
        current state, which only matters for direct library users.
        """
        artifacts: dict[str, Path] = {}
        if self.meter is not None:
            self.meter.close()
        if self.registry is not None:
            metrics_json = self.directory / METRICS_JSON
            atomic_write_text(metrics_json, self.registry.to_json() + "\n",
                              encoding="utf-8")
            artifacts["metrics_json"] = metrics_json
            metrics_prom = self.directory / METRICS_PROM
            atomic_write_text(metrics_prom, self.registry.to_prometheus(),
                              encoding="utf-8")
            artifacts["metrics_prom"] = metrics_prom
        if self.tracer is not None:
            if self._installed_tracer and get_tracer() is self.tracer:
                set_tracer(None)
                self._installed_tracer = False
            self.tracer.close()
            spans = read_spans(self.directory / TRACE_JSONL)
            if spans:
                chrome = self.directory / TRACE_CHROME
                write_chrome_trace(chrome, spans)
                artifacts["trace_chrome"] = chrome
            artifacts["trace_jsonl"] = self.directory / TRACE_JSONL
        self._finalized = True
        return artifacts

    def __enter__(self) -> "RunObserver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finalize()
