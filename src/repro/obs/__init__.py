"""Observability for the reproduction pipeline (zero dependencies).

The paper's negative result rests on *measured* runtime behavior; this
package gives the reproduction the same discipline about itself.  Four
small pieces compose into a per-run observability layer:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and log-bucketed histograms with snapshot/merge (worker metrics
  aggregate into the parent) and deterministic JSON + Prometheus
  exporters;
* :mod:`repro.obs.spans` — span tracing (``with trace_span(...):``) into
  a per-run ``trace.jsonl``, exportable to Chrome trace-event JSON;
* :mod:`repro.obs.probes` — cheap, default-off event counters inside the
  replay engines (quanta, miss classes, directory upgrades, context
  switches), gated so the disabled path stays on the fast path;
* :mod:`repro.obs.progress` — a single-line TTY progress meter fed from
  the engine's journal events.

:class:`~repro.obs.run.RunObserver` wires them into one run directory;
``repro-experiments --metrics --trace --progress`` turns them on and
``repro-stats <rundir>`` reads everything back.  See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.probes import SimProbe
from repro.obs.progress import ProgressMeter, drive_meter, follow_journal
from repro.obs.run import RunObserver
from repro.obs.spans import (
    Tracer,
    chrome_trace,
    get_tracer,
    read_spans,
    set_tracer,
    trace_span,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SimProbe",
    "ProgressMeter",
    "drive_meter",
    "follow_journal",
    "RunObserver",
    "Tracer",
    "trace_span",
    "set_tracer",
    "get_tracer",
    "read_spans",
    "chrome_trace",
    "write_chrome_trace",
]
