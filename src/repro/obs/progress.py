"""Live single-line progress for engine runs.

:class:`ProgressMeter` consumes the same journal events the engine
records (it is attached as a :class:`~repro.exec.journal.RunJournal`
listener) and keeps one status line current on the terminal::

    [##########..........] 37/74 cells | 5.1/s | eta 7s | retries 2 | faults 1

The meter only animates on a TTY (or when forced, for tests) — piped
stderr gets nothing until :meth:`close`, which prints one final summary
line so batch logs still record the outcome.  Redraws are rate-limited
so a fast run does not spend its time repainting the terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Iterable, TextIO

__all__ = ["ProgressMeter", "drive_meter", "follow_journal"]

#: Events that mean one more planned cell is accounted for.
_DONE_EVENTS = frozenset({"finished", "cache-hit", "resumed"})
#: Events counted into the fault tally (injected or infrastructure).
_FAULT_EVENTS = frozenset({"watchdog-kill", "store-failed"})

_BAR_WIDTH = 20


class ProgressMeter:
    """One-line live progress over journal events.

    Args:
        total: Planned cells (0 disables the bar and ETA).
        stream: Where to draw (default ``sys.stderr``).
        enabled: Force drawing on/off; default: ``stream.isatty()``.
        min_interval: Minimum seconds between repaints.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        enabled: bool | None = None,
        min_interval: float = 0.1,
        clock=time.monotonic,
    ) -> None:
        self.total = int(total)
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = bool(enabled)
        self.min_interval = float(min_interval)
        self._clock = clock
        self._start = clock()
        self._last_draw = -float("inf")
        self._width = 0
        self.done = 0
        self.executed = 0
        self.failed = 0
        self.retries = 0
        self.faults = 0
        self.nodes: set[str] = set()
        self.closed = False

    # -- event feed ------------------------------------------------------

    def update(self, entry: dict) -> None:
        """Fold one journal event in; repaint if due."""
        event = entry.get("event")
        node = entry.get("node")
        if node:  # merged cluster journals attribute events to nodes
            self.nodes.add(str(node))
        if event in _DONE_EVENTS:
            self.done += 1
            if event == "finished":
                self.executed += 1
        elif event == "failed":
            self.failed += 1
        elif event == "retrying":
            self.retries += 1
        elif event in _FAULT_EVENTS:
            self.faults += 1
        self._draw()

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """The current status line (no carriage control)."""
        elapsed = max(self._clock() - self._start, 1e-9)
        rate = self.done / elapsed
        parts = []
        if self.total > 0:
            filled = min(_BAR_WIDTH,
                         int(_BAR_WIDTH * self.done / self.total))
            bar = "#" * filled + "." * (_BAR_WIDTH - filled)
            parts.append(f"[{bar}] {self.done}/{self.total} cells")
            remaining = self.total - self.done
            if rate > 0 and remaining > 0:
                parts.append(f"eta {remaining / rate:.0f}s")
            elif remaining <= 0:
                parts.append("done")
        else:
            parts.append(f"{self.done} cells")
        parts.insert(1, f"{rate:.1f}/s")
        if self.nodes:
            parts.append(f"{len(self.nodes)} node"
                         + ("s" if len(self.nodes) != 1 else ""))
        if self.failed:
            parts.append(f"failed {self.failed}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        if self.faults:
            parts.append(f"faults {self.faults}")
        return " | ".join(parts)

    def _draw(self, *, force: bool = False) -> None:
        if not self.enabled or self.closed:
            return
        now = self._clock()
        if not force and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        line = self.render()
        pad = " " * max(0, self._width - len(line))
        self._width = len(line)
        try:
            self.stream.write("\r" + line + pad)
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go quiet
            self.enabled = False

    def close(self) -> None:
        """Final paint plus a newline (called once, at run end)."""
        if self.closed:
            return
        if self.enabled:
            self._draw(force=True)
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
        self.closed = True


def drive_meter(
    events: Iterable[dict],
    *,
    stream: TextIO | None = None,
    enabled: bool | None = None,
    meter: ProgressMeter | None = None,
) -> ProgressMeter:
    """Drive a :class:`ProgressMeter` from any journal-event iterable.

    The meter consumes plain event dicts, so the feed can be anything
    that yields them: the engine's live listener, a
    :meth:`~repro.exec.journal.RunJournal.tail` over a journal file, or
    the service's NDJSON job stream
    (:meth:`repro.service.client.ServiceClient.events`) — one meter, any
    transport.  A ``run-start`` event sets the planned total; the meter
    is closed (final line painted) when the feed ends.

    Returns the (closed) meter, so callers can read the tallies.
    """
    if meter is None:
        meter = ProgressMeter(0, stream=stream, enabled=enabled)
    try:
        for entry in events:
            if entry.get("event") == "run-start":
                try:
                    meter.total = int(entry.get("jobs") or 0)
                except (TypeError, ValueError):
                    pass
            meter.update(entry)
    finally:
        meter.close()
    return meter


def follow_journal(
    path,
    *,
    stream: TextIO | None = None,
    enabled: bool | None = None,
    poll_interval: float = 0.1,
    timeout: float | None = None,
    stop: Callable[[], bool] | None = None,
) -> ProgressMeter:
    """Follow a live journal file with a progress meter (``tail -f``
    with a status line).

    Built on :meth:`RunJournal.tail`, the same safe tailer the service's
    event streams use, so torn tails and concurrent appends are handled
    identically.  Ends when the run does (``run-end`` /
    ``run-interrupted``), when ``stop()`` returns true, or when
    ``timeout`` elapses.  ``repro-stats --follow`` is the CLI face of
    this function.
    """
    from repro.exec.journal import TERMINAL_EVENTS, RunJournal

    def feed():
        for entry in RunJournal.tail(path, follow=True,
                                     poll_interval=poll_interval,
                                     timeout=timeout, stop=stop):
            yield entry
            if entry.get("event") in TERMINAL_EVENTS:
                return

    return drive_meter(feed(), stream=stream, enabled=enabled)
