"""Span-based tracing: ``trace.jsonl`` records and Chrome trace export.

A **span** is one timed region of the run — a pipeline stage, one
simulated cell, one export — recorded as a single JSON line::

    {"name": "simulate_cell", "ts": 1722950000.1, "wall": 0.84,
     "cpu": 0.83, "pid": 4711, "tid": 0, "args": {"app": "Water", ...}}

``ts`` is epoch seconds at span start; ``wall``/``cpu`` are elapsed wall
and CPU seconds.  Lines are appended and flushed one at a time, so a
killed run leaves a readable prefix (the journal discipline).

Spans come from two places:

* in-process code wraps regions in :func:`trace_span` (a no-op costing
  one global load when no tracer is installed);
* the execution engine records one span per completed job from the
  worker's reported timings, with ``pid`` set to the *worker* pid — so
  the Chrome export of a parallel run renders as a timeline of
  workers x cells.

:func:`write_chrome_trace` converts a ``trace.jsonl`` into the Chrome
trace-event JSON format (load it at ``chrome://tracing`` or
https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.util.atomicio import atomic_write_text

__all__ = ["Tracer", "trace_span", "set_tracer", "get_tracer",
           "read_spans", "chrome_trace", "write_chrome_trace"]


class Tracer:
    """Appends span records to a JSONL file (thread-safe, flushed)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()

    def add(
        self,
        name: str,
        *,
        ts: float,
        wall: float,
        cpu: float | None = None,
        pid: int | None = None,
        tid: int | str = 0,
        args: dict | None = None,
    ) -> dict:
        """Record one externally measured span (returns the record)."""
        record = {
            "name": name,
            "ts": round(float(ts), 6),
            "wall": round(float(wall), 6),
            "pid": int(pid) if pid is not None else os.getpid(),
            "tid": tid,
        }
        if cpu is not None:
            record["cpu"] = round(float(cpu), 6)
        if args:
            record["args"] = args
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._stream is not None:
                self._stream.write(line)
                self._stream.flush()
        return record

    @contextmanager
    def span(self, name: str, **args) -> Iterator[dict]:
        """Time a region and record it on exit (even on exceptions).

        Yields the mutable ``args`` dict, so the body can attach results
        (``attrs["cells"] = n``) that land in the record.
        """
        ts = time.time()
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield args
        finally:
            self.add(
                name,
                ts=ts,
                wall=time.perf_counter() - wall0,
                cpu=time.process_time() - cpu0,
                args=args or None,
            )

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None


#: The process-wide current tracer (None = tracing off everywhere).
_CURRENT: Tracer | None = None


def set_tracer(tracer: Tracer | None) -> None:
    """Install (or remove, with None) the process-wide tracer."""
    global _CURRENT
    _CURRENT = tracer


def get_tracer() -> Tracer | None:
    """The currently installed tracer, if any."""
    return _CURRENT


@contextmanager
def trace_span(name: str, **args) -> Iterator[dict]:
    """Trace a region against the current tracer; free when tracing is off.

    Usage::

        with trace_span("simulate_cell", app="Water", placement="MIN-INVS"):
            ...
    """
    tracer = _CURRENT
    if tracer is None:
        yield args
        return
    with tracer.span(name, **args) as record_args:
        yield record_args


# ----------------------------------------------------------------------
# Reading and exporting
# ----------------------------------------------------------------------


def read_spans(path: str | Path) -> list[dict]:
    """All parseable span records in a trace.jsonl (torn tails skipped)."""
    spans = []
    path = Path(path)
    if not path.exists():
        return spans
    with path.open("r", encoding="utf-8", errors="replace") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "name" in record and "ts" in record:
                spans.append(record)
    return spans


def chrome_trace(spans: list[dict]) -> dict:
    """Spans as a Chrome trace-event document (``ph: "X"`` complete events).

    Timestamps are microseconds relative to the earliest span, so the
    viewer opens at t=0 instead of the epoch.
    """
    base = min((s["ts"] for s in spans), default=0.0)
    events = []
    for span in spans:
        event = {
            "name": span["name"],
            "ph": "X",
            "ts": int(round((span["ts"] - base) * 1e6)),
            "dur": max(1, int(round(span.get("wall", 0.0) * 1e6))),
            "pid": span.get("pid", 0),
            "tid": span.get("tid", 0),
        }
        args = dict(span.get("args") or {})
        if "cpu" in span:
            args["cpu_s"] = span["cpu"]
        if args:
            event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, spans: list[dict]) -> None:
    """Atomically write the Chrome trace-event JSON for ``spans``."""
    atomic_write_text(
        path, json.dumps(chrome_trace(spans), sort_keys=True), encoding="utf-8"
    )
