"""The metrics registry: counters, gauges and log-bucketed histograms.

A :class:`MetricsRegistry` is the process-local home of every named
metric the pipeline emits.  It is deliberately tiny and dependency-free:

* **Counters** only go up (`jobs_finished`, `sim_miss_invalidation`).
* **Gauges** hold the latest value (`run_wall_seconds`).
* **Histograms** bucket observations into *fixed log-spaced buckets*
  (powers of two by default), so two histograms recorded by different
  processes are always mergeable bucket-by-bucket — no rebinning, no
  approximation.

The registry is thread-safe (one lock shared by every metric — the hot
simulation path never touches the registry; it uses the lock-free
:class:`~repro.obs.probes.SimProbe` and merges once per cell) and
**mergeable across processes**: :meth:`MetricsRegistry.snapshot` returns
a plain-JSON dict a worker can ship over the engine's existing result
channel, and :meth:`MetricsRegistry.merge` folds such a snapshot into
the parent registry (counters and histogram buckets add, gauges take the
incoming value).

Two deterministic exporters round the registry out:

* :meth:`MetricsRegistry.to_json` — sorted-key JSON, byte-stable for a
  given set of values;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus *textfile
  collector* format (one ``# TYPE`` header per metric, cumulative
  ``_bucket{le=...}`` lines for histograms), ready to drop into a node
  exporter's textfile directory.
"""

from __future__ import annotations

import json
import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Fixed log-spaced histogram bounds: powers of two from ~0.1 ms to
#: ~4096 s.  Fixed (not adaptive) so snapshots from any process merge
#: exactly; log-spaced so the same buckets resolve both a 2 ms cell and
#: a 10-minute sweep.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2.0 ** e for e in range(-13, 13))


def _label_key(labels: dict) -> str:
    """Render labels exactly as Prometheus does — doubles as the map key,
    so one metric name + label set is one time series everywhere."""
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{v}"' for k, v in sorted((str(k), str(v))
                                        for k, v in labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (latest write wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Observations bucketed into fixed log-spaced bounds.

    ``counts[i]`` counts observations ``<= bounds[i]`` (non-cumulative
    per bucket); ``counts[-1]`` is the overflow (+Inf) bucket.  ``count``
    and ``total`` track the exact population for mean/rate math.
    """

    __slots__ = ("bounds", "counts", "count", "total", "_lock")

    def __init__(self, lock: threading.Lock,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[self._bucket_index(value)] += 1
            self.count += 1
            self.total += value

    def _bucket_index(self, value: float) -> int:
        # Log-spaced bounds make the bucket computable in O(1); fall back
        # to a scan for custom bounds, which are short anyway.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (0-1): the upper bound of the bucket the
        q-th observation falls in (conservative, merge-stable)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= rank and n:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf


class MetricsRegistry:
    """Thread-safe named-metric store with snapshot/merge and exporters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access (get-or-create; one series per name+labels) -------------

    def counter(self, name: str, **labels) -> Counter:
        key = name + _label_key(labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(self._lock)
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = name + _label_key(labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(self._lock)
        return metric

    def histogram(self, name: str, *,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = name + _label_key(labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(self._lock, bounds)
        return metric

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-JSON copy of every metric (safe to pickle/ship)."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "count": h.count,
                        "total": h.total,
                    }
                    for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in.

        Counters and histogram buckets add; gauges take the incoming
        value.  Histogram bounds must match exactly — fixed buckets are
        the merge contract.
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            self.gauge(key).set(value)
        for key, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(key, bounds=tuple(data["bounds"]))
            if list(hist.bounds) != list(data["bounds"]):
                raise ValueError(
                    f"histogram {key!r}: merge bounds mismatch "
                    f"({list(hist.bounds)[:3]}... vs {data['bounds'][:3]}...)"
                )
            with self._lock:
                for i, n in enumerate(data["counts"]):
                    hist.counts[i] += n
                hist.count += data["count"]
                hist.total += data["total"]

    # -- exporters -------------------------------------------------------

    def to_json(self, *, indent: int = 2) -> str:
        """Deterministic JSON (sorted keys) of the full snapshot."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def to_prometheus(self) -> str:
        """The Prometheus textfile-collector rendering of every metric."""
        snap = self.snapshot()
        lines: list[str] = []
        seen_types: set[str] = set()

        def base_name(key: str) -> str:
            return key.split("{", 1)[0]

        def type_line(key: str, kind: str) -> None:
            base = base_name(key)
            if base not in seen_types:
                seen_types.add(base)
                lines.append(f"# TYPE {base} {kind}")

        for key in sorted(snap["counters"]):
            type_line(key, "counter")
            lines.append(f"{key} {_fmt(snap['counters'][key])}")
        for key in sorted(snap["gauges"]):
            type_line(key, "gauge")
            lines.append(f"{key} {_fmt(snap['gauges'][key])}")
        for key in sorted(snap["histograms"]):
            data = snap["histograms"][key]
            base = base_name(key)
            labels = key[len(base):]
            type_line(key, "histogram")
            cumulative = 0
            for bound, n in zip(data["bounds"], data["counts"]):
                cumulative += n
                lines.append(
                    f"{base}_bucket{_with_le(labels, _fmt(bound))} {cumulative}"
                )
            lines.append(
                f"{base}_bucket{_with_le(labels, '+Inf')} {data['count']}"
            )
            lines.append(f"{base}_sum{labels} {_fmt(data['total'])}")
            lines.append(f"{base}_count{labels} {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Float rendering with no trailing noise (ints stay ints)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _with_le(labels: str, le: str) -> str:
    """Insert the ``le`` label into an existing (possibly empty) label set."""
    if not labels:
        return '{le="' + le + '"}'
    return labels[:-1] + ',le="' + le + '"}'
