"""Simulator probes: cheap, default-off counters inside the replay engines.

A :class:`SimProbe` is a bag of plain integer slots the simulator bumps
at four *event* sites — scheduling-quantum boundaries, cache-miss
classifications, directory upgrades that actually send invalidations,
and context switches.  The contract with the hot path:

* every site is gated by a single ``if <probe> is not None`` test on an
  attribute that defaults to None, so the disabled path pays one
  attribute load and branch *per event* (never per reference — the hit
  loops are untouched; see ``benchmarks/bench_obs_overhead.py`` for the
  measured bound);
* probes observe, never steer: a probed simulation is bit-for-bit
  identical to an unprobed one (pinned by
  ``tests/obs/test_probes.py``), and the counters themselves are
  engine-invariant — classic and fast replay report the same numbers,
  because upgrades are counted only when invalidations are actually
  sent (the one site the fast kernel provably skips no-ops at).

Probe counters cross process boundaries as flat dicts: the engine
worker stashes :meth:`SimProbe.snapshot` via :func:`stash_pending`, the
coordinator pops it with :func:`take_pending` from the job's result
payload and merges it into the run's metrics registry.
"""

from __future__ import annotations

from repro.arch.stats import MissKind

__all__ = ["SimProbe", "stash_pending", "take_pending"]

#: Flat counter names for the four miss classes (stable metric names).
_MISS_NAMES = {
    MissKind.COMPULSORY: "sim_miss_compulsory",
    MissKind.INTRA_THREAD_CONFLICT: "sim_miss_intra_conflict",
    MissKind.INTER_THREAD_CONFLICT: "sim_miss_inter_conflict",
    MissKind.INVALIDATION: "sim_miss_invalidation",
}


class SimProbe:
    """Event counters one simulation run fills in (single-threaded)."""

    __slots__ = ("quanta", "switches", "upgrades", "misses", "cells",
                 "spec_attempts", "spec_hits", "spec_aborts",
                 "spec_delta_rejects")

    def __init__(self) -> None:
        self.quanta = 0      #: scheduling quanta executed
        self.switches = 0    #: context switches paid
        self.upgrades = 0    #: directory upgrades that sent invalidations
        self.misses = {kind: 0 for kind in MissKind}
        self.cells = 0       #: simulations observed (bumped by simulate())
        # Speculation outcomes (bumped by the experiment suite, not the
        # replay loop): cells where a completed neighbor was tried, cells
        # it fully answered (clone or composed delta), and guard aborts
        # that fell back to full replay.  With speculation the sim_*
        # event counters above cover only the work actually replayed —
        # the gap to a non-speculative run is the work these saved.
        self.spec_attempts = 0
        self.spec_hits = 0
        self.spec_aborts = 0
        # Aborts specifically from the delta tier's empty partition (no
        # copyable processor); the journal carries the cut-edge count.
        self.spec_delta_rejects = 0

    def snapshot(self) -> dict[str, int]:
        """Flat ``{metric_name: count}`` view (ships between processes)."""
        out = {
            "sim_cells": self.cells,
            "sim_quanta": self.quanta,
            "sim_context_switches": self.switches,
            "sim_directory_upgrades": self.upgrades,
        }
        for kind, name in _MISS_NAMES.items():
            out[name] = self.misses[kind]
        out["sim_misses_total"] = sum(self.misses.values())
        out["sim_spec_attempts"] = self.spec_attempts
        out["sim_spec_hits"] = self.spec_hits
        out["sim_spec_aborts"] = self.spec_aborts
        out["sim_spec_delta_rejects"] = self.spec_delta_rejects
        return out

    def merge(self, other: "SimProbe") -> None:
        """Accumulate another probe's counts into this one."""
        self.quanta += other.quanta
        self.switches += other.switches
        self.upgrades += other.upgrades
        self.cells += other.cells
        self.spec_attempts += other.spec_attempts
        self.spec_hits += other.spec_hits
        self.spec_aborts += other.spec_aborts
        self.spec_delta_rejects += other.spec_delta_rejects
        for kind in MissKind:
            self.misses[kind] += other.misses[kind]

    def __repr__(self) -> str:
        return (
            f"SimProbe(cells={self.cells}, quanta={self.quanta}, "
            f"switches={self.switches}, upgrades={self.upgrades}, "
            f"misses={sum(self.misses.values())})"
        )


# ----------------------------------------------------------------------
# Worker -> coordinator hand-off
# ----------------------------------------------------------------------

#: Snapshot the current job's runner left for the invoke harness to ship.
_PENDING: dict | None = None


def stash_pending(snapshot: dict) -> None:
    """Deposit a probe snapshot for the engine's invoke harness to pick
    up and attach to the job's result payload (worker side)."""
    global _PENDING
    _PENDING = snapshot


def take_pending() -> dict | None:
    """Pop the snapshot the job runner stashed, if any (invoke harness)."""
    global _PENDING
    snapshot, _PENDING = _PENDING, None
    return snapshot
