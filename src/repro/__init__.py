"""repro — reproduction of Thekkath & Eggers (ISCA 1994).

"Impact of Sharing-Based Thread Placement on Multithreaded Architectures".

Public API layers (see DESIGN.md for the full inventory):

* :mod:`repro.trace` — trace substrate and static per-thread analysis;
* :mod:`repro.workload` — synthetic reconstruction of the 14-application
  suite, calibrated to the paper's Tables 1 and 2;
* :mod:`repro.placement` — the placement-algorithm family (SHARE-REFS,
  SHARE-ADDR, MIN-PRIV, MIN-INVS, MAX-WRITES, MIN-SHARE, their "+LB"
  variants, LOAD-BAL, RANDOM, and the dynamic coherence-traffic placer);
* :mod:`repro.arch` — the multithreaded multiprocessor simulator
  (multi-context processors, direct-mapped/set-associative caches with
  four-way miss classification, directory-based write-invalidate
  coherence, fixed-latency interconnect);
* :mod:`repro.oracle` — the simulator's correctness net: a slow
  reference interpreter, runtime invariant checking, and exact result
  comparison for the differential test suite;
* :mod:`repro.experiments` — regeneration of every table and figure in
  the paper's evaluation.
"""

__version__ = "1.0.0"
