"""Balance constraints for cluster combining.

Two constraint families from the paper's §2:

* **Thread balance** (the default): the final partition must have cluster
  sizes in {⌊t/p⌋, ⌈t/p⌉}.  During combining, a merge is admissible only if
  the resulting multiset of cluster sizes can *still* be merged down to
  such a partition — an exact feasibility question this module answers with
  a memoized search (:func:`thread_balance_feasible`).
* **Load balance** (the "+LB" variants, §2 item 8): a merge is admissible
  while the combined instruction load of the two clusters stays within a
  tolerance (typically 10%) of the ideal per-processor load.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.util.validate import check_positive, check_range

__all__ = [
    "balanced_cluster_sizes",
    "thread_balance_feasible",
    "BalancePolicy",
    "ThreadBalance",
    "LoadBalance",
    "Unconstrained",
]


def balanced_cluster_sizes(num_threads: int, num_processors: int) -> list[int]:
    """Target cluster sizes of a thread-balanced placement (descending).

    ``t mod p`` clusters of size ⌈t/p⌉ and the rest of size ⌊t/p⌋.
    """
    check_positive("num_threads", num_threads)
    check_positive("num_processors", num_processors)
    if num_processors > num_threads:
        raise ValueError(
            f"{num_processors} processors for {num_threads} threads: "
            "some processor would be empty"
        )
    floor = num_threads // num_processors
    remainder = num_threads % num_processors
    return [floor + 1] * remainder + [floor] * (num_processors - remainder)


@lru_cache(maxsize=200_000)
def _can_pack(sizes: tuple[int, ...], bins: tuple[int, ...]) -> bool:
    """Can the size multiset be merged into groups with exactly these sums?

    Classic number-partitioning feasibility, exact via DFS.  ``sizes`` must
    be sorted descending and ``bins`` sorted descending; memoized on the
    canonical state.  Cluster counts here are small (they only shrink as
    combining proceeds) and sizes repeat heavily, so the cache keeps this
    fast in practice.
    """
    if not sizes:
        return all(b == 0 for b in bins)
    first, rest = sizes[0], sizes[1:]
    tried: set[int] = set()
    for i, capacity in enumerate(bins):
        if capacity in tried or capacity < first:
            continue
        tried.add(capacity)
        new_bins = tuple(sorted(
            bins[:i] + (capacity - first,) + bins[i + 1:], reverse=True
        ))
        if _can_pack(rest, new_bins):
            return True
    return False


def thread_balance_feasible(
    cluster_sizes: Sequence[int], num_threads: int, num_processors: int
) -> bool:
    """Can these clusters still reach a thread-balanced final partition?

    True iff the multiset of current cluster sizes can be merged (merging
    only ever unions whole clusters) into exactly ``num_processors`` groups
    whose sizes are ⌊t/p⌋ or ⌈t/p⌉.
    """
    sizes = tuple(sorted((int(s) for s in cluster_sizes), reverse=True))
    if sum(sizes) != num_threads:
        raise ValueError(
            f"cluster sizes sum to {sum(sizes)}, expected {num_threads}"
        )
    if len(sizes) < num_processors:
        return False
    bins = tuple(balanced_cluster_sizes(num_threads, num_processors))
    return _can_pack(sizes, bins)


class BalancePolicy:
    """Decides whether two clusters may be combined, given engine state."""

    def allows(
        self,
        cluster_a: list[int],
        cluster_b: list[int],
        all_sizes: Sequence[int],
        lengths: np.ndarray,
        num_threads: int,
        num_processors: int,
    ) -> bool:
        """May clusters a and b merge?

        Args:
            cluster_a, cluster_b: The candidate clusters (thread ids).
            all_sizes: Sizes of *all* current clusters, with a and b merged
                already reflected (callers pass the post-merge multiset).
            lengths: Per-thread instruction lengths.
            num_threads / num_processors: Problem dimensions.
        """
        raise NotImplementedError

    def pair_mask(
        self,
        pairs: np.ndarray,
        sizes: np.ndarray,
        loads: np.ndarray,
        num_threads: int,
        num_processors: int,
    ) -> np.ndarray | None:
        """Vectorized :meth:`allows` over many candidate pairs at once.

        Args:
            pairs: ``(n, 2)`` integer array of cluster index pairs.
            sizes: Current thread count per cluster (one entry per cluster).
            loads: Current instruction load per cluster (same indexing).
            num_threads / num_processors: Problem dimensions.

        Returns:
            Boolean array of length ``n`` — ``mask[k]`` must equal
            ``allows()`` for ``pairs[k]`` — or ``None`` when the policy has
            no vectorized form (the clustering engine then falls back to
            per-pair :meth:`allows` calls).  Policies are pure functions of
            the sizes/loads state, so evaluating every pair eagerly is
            observationally identical to the engine's lazy reference loop.
        """
        return None


@dataclass(frozen=True)
class ThreadBalance(BalancePolicy):
    """The paper's default: exact thread balance must stay reachable."""

    def allows(self, cluster_a, cluster_b, all_sizes, lengths,
               num_threads, num_processors) -> bool:
        """Merge allowed iff exact thread balance remains reachable."""
        ceil = -(-num_threads // num_processors)
        if len(cluster_a) + len(cluster_b) > ceil:
            return False
        return thread_balance_feasible(all_sizes, num_threads, num_processors)

    def pair_mask(self, pairs, sizes, loads, num_threads, num_processors):
        """Vectorized form: feasibility depends only on the merged pair's
        *sizes*, so distinct ``(size_a, size_b)`` values are checked once
        and shared across every pair with those sizes."""
        sizes = np.asarray(sizes, dtype=np.int64)
        size_a = sizes[pairs[:, 0]]
        size_b = sizes[pairs[:, 1]]
        ceil = -(-num_threads // num_processors)
        mask = (size_a + size_b) <= ceil
        if not mask.any():
            return mask
        # One feasibility question per distinct (larger, smaller) size
        # pair, broadcast back to every candidate with those sizes.
        hi = np.maximum(size_a, size_b)
        lo = np.minimum(size_a, size_b)
        codes = np.where(mask, hi * (num_threads + 1) + lo, -1)
        all_sizes = sizes.tolist()
        for code in np.unique(codes[mask]):
            big, small = divmod(int(code), num_threads + 1)
            multiset = list(all_sizes)
            multiset.remove(big)
            multiset.remove(small)
            multiset.append(big + small)
            if not thread_balance_feasible(multiset, num_threads,
                                           num_processors):
                mask[codes == code] = False
        return mask


@dataclass(frozen=True)
class LoadBalance(BalancePolicy):
    """The "+LB" criterion: merged load within tolerance of the ideal.

    "The load-balancing criteria is deemed satisfied if the combined load
    of the two clusters does not exceed a certain percentage (typically
    10%) of the desirable load." (§2, item 8)
    """

    tolerance: float = 0.10

    def __post_init__(self) -> None:
        check_range("tolerance", self.tolerance, 0.0, 1.0)

    def allows(self, cluster_a, cluster_b, all_sizes, lengths,
               num_threads, num_processors) -> bool:
        """Merge allowed iff the combined load stays within tolerance."""
        ideal = float(lengths.sum()) / num_processors
        combined = float(lengths[list(cluster_a) + list(cluster_b)].sum())
        return combined <= (1.0 + self.tolerance) * ideal

    def pair_mask(self, pairs, sizes, loads, num_threads, num_processors):
        """Vectorized form over per-cluster load sums.

        Loads are integer instruction counts, so ``loads[i] + loads[j]``
        converted to float is bit-identical to the reference's
        ``lengths[a + b].sum()`` (exact below 2**53) and the comparison
        reproduces :meth:`allows` decision for decision."""
        loads = np.asarray(loads, dtype=np.int64)
        ideal = float(loads.sum()) / num_processors
        combined = (loads[pairs[:, 0]] + loads[pairs[:, 1]]).astype(float)
        return combined <= (1.0 + self.tolerance) * ideal


@dataclass(frozen=True)
class Unconstrained(BalancePolicy):
    """No balance constraint (useful for tests and ablations)."""

    def allows(self, cluster_a, cluster_b, all_sizes, lengths,
               num_threads, num_processors) -> bool:
        """Always allowed."""
        return True

    def pair_mask(self, pairs, sizes, loads, num_threads, num_processors):
        """Vectorized form: every pair is admissible."""
        return np.ones(len(pairs), dtype=bool)
