"""Placement-quality metrics.

Given a placement and the static analysis, quantify what each algorithm
actually optimized — the quantities the paper's §4 discussion reasons
about when explaining the results:

* **captured sharing**: the fraction of all pairwise shared references
  that fall *within* clusters (what SHARE-REFS maximizes; the paper's
  Figure 1(d) totals);
* **cross-processor write sharing**: write-shared references split across
  processors (what MIN-INVS minimizes — the static proxy for
  invalidations);
* **private footprint balance**: private addresses per processor (what
  MIN-PRIV's secondary criterion controls);
* **load imbalance** and **thread balance** (what LOAD-BAL and the
  thread-balance constraint control).

These are *static* metrics — the point of the paper is precisely that
optimizing them does not move execution time; this module makes that
visible (see ``examples/placement_anatomy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.placement.base import PlacementMap
from repro.trace.analysis import TraceSetAnalysis

__all__ = ["PlacementQuality", "evaluate_placement"]


@dataclass(frozen=True)
class PlacementQuality:
    """Static quality metrics of one placement.

    Attributes:
        captured_sharing: Within-cluster pairwise shared references as a
            fraction of all pairwise shared references (1.0 = all sharing
            co-located; impossible unless one processor).
        cross_write_sharing: Write-shared references between threads on
            *different* processors, as a fraction of all pairwise
            write-shared references (the static invalidation proxy).
        load_imbalance: Max processor instruction load over the ideal.
        thread_balanced: Whether cluster sizes are all ⌊t/p⌋ or ⌈t/p⌉.
        private_addresses_max: Largest per-processor private-address count.
        private_addresses_mean: Mean per-processor private-address count.
    """

    captured_sharing: float
    cross_write_sharing: float
    load_imbalance: float
    thread_balanced: bool
    private_addresses_max: int
    private_addresses_mean: float

    def __str__(self) -> str:
        return (
            f"captured sharing {100 * self.captured_sharing:.1f}%, "
            f"cross-processor write sharing {100 * self.cross_write_sharing:.1f}%, "
            f"load imbalance {self.load_imbalance:.3f}, "
            f"thread-balanced {'yes' if self.thread_balanced else 'no'}"
        )


def _within_cluster_fraction(matrix: np.ndarray, placement: PlacementMap) -> float:
    """Fraction of a symmetric pair-matrix total that is intra-cluster."""
    t = matrix.shape[0]
    upper = np.triu_indices(t, k=1)
    total = float(matrix[upper].sum())
    if total == 0.0:
        return 0.0
    same = placement.assignment[upper[0]] == placement.assignment[upper[1]]
    within = float(matrix[upper][same].sum())
    return within / total


def evaluate_placement(
    placement: PlacementMap, analysis: TraceSetAnalysis
) -> PlacementQuality:
    """Compute the static quality metrics of a placement.

    Raises:
        ValueError: If the placement's thread count does not match the
            analysis.
    """
    if placement.num_threads != analysis.num_threads:
        raise ValueError(
            f"placement covers {placement.num_threads} threads, analysis has "
            f"{analysis.num_threads}"
        )
    captured = _within_cluster_fraction(analysis.shared_refs_matrix, placement)
    cross_writes = 1.0 - _within_cluster_fraction(
        analysis.write_shared_refs_matrix, placement
    )
    if float(analysis.write_shared_refs_matrix.sum()) == 0.0:
        cross_writes = 0.0

    lengths = np.array([p.length for p in analysis.profiles], dtype=np.int64)
    private = analysis.private_addresses_per_thread
    per_proc_private = np.zeros(placement.num_processors, dtype=np.int64)
    np.add.at(per_proc_private, placement.assignment, private)

    return PlacementQuality(
        captured_sharing=captured,
        cross_write_sharing=cross_writes,
        load_imbalance=placement.load_imbalance(lengths),
        thread_balanced=placement.is_thread_balanced(),
        private_addresses_max=int(per_proc_private.max()),
        private_addresses_mean=float(per_proc_private.mean()),
    )
