"""Placement maps and the algorithm interface.

A placement algorithm's job (paper §2): "Given a set of threads and the
number of processors to schedule, ... map each thread to a specific
processor."  The output is a :class:`PlacementMap`; the inputs — everything
an algorithm is allowed to see — are bundled in :class:`PlacementInputs`.

Placement is *static*: the simulator never migrates threads, exactly as in
the paper ("This is a static assignment that does not vary during the
simulation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.trace.analysis import TraceSetAnalysis
from repro.util.validate import check_positive

__all__ = ["PlacementMap", "PlacementInputs", "PlacementAlgorithm"]


class PlacementMap:
    """An assignment of every thread to one processor.

    Attributes:
        assignment: int array, ``assignment[tid]`` is the processor of
            thread ``tid``.
        num_processors: Number of processors the map targets.  Processors
            may be empty (a map is not required to use them all, though
            every algorithm in this package produces non-empty clusters).
    """

    __slots__ = ("assignment", "num_processors")

    def __init__(self, assignment: Sequence[int] | np.ndarray, num_processors: int) -> None:
        check_positive("num_processors", num_processors)
        array = np.asarray(assignment, dtype=np.int64)
        if array.ndim != 1 or array.size == 0:
            raise ValueError("assignment must be a non-empty 1-D sequence")
        if array.min() < 0 or array.max() >= num_processors:
            raise ValueError(
                f"assignment values must be in [0, {num_processors}), got "
                f"[{array.min()}, {array.max()}]"
            )
        self.assignment = array
        self.num_processors = int(num_processors)

    @classmethod
    def from_clusters(
        cls, clusters: Sequence[Sequence[int]], num_threads: int,
        num_processors: int | None = None,
    ) -> "PlacementMap":
        """Build a map from explicit clusters (cluster i -> processor i)."""
        if num_processors is None:
            num_processors = len(clusters)
        assignment = np.full(num_threads, -1, dtype=np.int64)
        for proc, cluster in enumerate(clusters):
            for tid in cluster:
                if not 0 <= tid < num_threads:
                    raise ValueError(f"cluster names unknown thread {tid}")
                if assignment[tid] != -1:
                    raise ValueError(f"thread {tid} appears in two clusters")
                assignment[tid] = proc
        if (assignment == -1).any():
            missing = np.flatnonzero(assignment == -1).tolist()
            raise ValueError(f"threads {missing} not placed by any cluster")
        return cls(assignment, num_processors)

    @property
    def num_threads(self) -> int:
        return int(self.assignment.size)

    def threads_on(self, processor: int) -> list[int]:
        """Thread ids placed on one processor, in thread order."""
        return np.flatnonzero(self.assignment == processor).tolist()

    def clusters(self) -> list[list[int]]:
        """Threads per processor, indexed by processor."""
        return [self.threads_on(p) for p in range(self.num_processors)]

    def cluster_sizes(self) -> np.ndarray:
        """Threads per processor, indexed by processor id."""
        return np.bincount(self.assignment, minlength=self.num_processors)

    def loads(self, thread_lengths: Sequence[int] | np.ndarray) -> np.ndarray:
        """Per-processor instruction load under this map."""
        lengths = np.asarray(thread_lengths, dtype=np.int64)
        if lengths.size != self.num_threads:
            raise ValueError(
                f"expected {self.num_threads} thread lengths, got {lengths.size}"
            )
        loads = np.zeros(self.num_processors, dtype=np.int64)
        np.add.at(loads, self.assignment, lengths)
        return loads

    def is_thread_balanced(self) -> bool:
        """True when cluster sizes are all floor or ceil of threads/procs."""
        sizes = self.cluster_sizes()
        floor = self.num_threads // self.num_processors
        ceil = -(-self.num_threads // self.num_processors)
        return bool(np.all((sizes == floor) | (sizes == ceil)))

    def load_imbalance(self, thread_lengths: Sequence[int] | np.ndarray) -> float:
        """Max processor load over the ideal (total / processors); >= 1."""
        loads = self.loads(thread_lengths)
        ideal = loads.sum() / self.num_processors
        return float(loads.max() / ideal) if ideal > 0 else 1.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementMap):
            return NotImplemented
        return (
            self.num_processors == other.num_processors
            and np.array_equal(self.assignment, other.assignment)
        )

    def __repr__(self) -> str:
        return (
            f"PlacementMap(threads={self.num_threads}, "
            f"processors={self.num_processors}, sizes={self.cluster_sizes().tolist()})"
        )


@dataclass
class PlacementInputs:
    """Everything a placement algorithm may consult.

    Static algorithms read the trace analysis (per-thread profiles, pairwise
    matrices, thread lengths); the dynamic coherence-traffic algorithm
    (§4.2) additionally receives a measured pairwise-traffic matrix.

    Attributes:
        analysis: Static analysis of the application's traces.
        num_processors: Processors to place onto.
        rng: Source of randomness for RANDOM placement (and tie shuffling).
        coherence_matrix: Optional measured pairwise coherence traffic
            (threads x threads), for the dynamic algorithm.
        incremental: Let the clustering engine keep incremental search
            state (bit-identical, much faster).  ``False`` forces the
            from-scratch reference loop — the same escape hatch the
            simulator's ``--no-speculate`` flag uses.
    """

    analysis: TraceSetAnalysis
    num_processors: int
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    coherence_matrix: np.ndarray | None = None
    incremental: bool = True

    def __post_init__(self) -> None:
        check_positive("num_processors", self.num_processors)
        if self.num_processors > self.analysis.num_threads:
            raise ValueError(
                f"cannot place {self.analysis.num_threads} threads on "
                f"{self.num_processors} processors (threads < processors)"
            )

    @property
    def num_threads(self) -> int:
        return self.analysis.num_threads

    @cached_property
    def thread_lengths(self) -> np.ndarray:
        return np.array([p.length for p in self.analysis.profiles], dtype=np.int64)


class PlacementAlgorithm:
    """Base class for all placement algorithms.

    Subclasses set :attr:`name` (the paper's spelling, e.g. "SHARE-REFS")
    and implement :meth:`place`.
    """

    name: str = "UNNAMED"

    def place(self, inputs: PlacementInputs) -> PlacementMap:
        """Map every thread of ``inputs`` to a processor."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
