"""Thread placement algorithms (paper §2 and §4.2).

Map threads to processors by agglomerative clustering under balance
constraints.  Typical use::

    from repro.placement import PlacementInputs, algorithm_by_name
    from repro.trace.analysis import TraceSetAnalysis

    inputs = PlacementInputs(TraceSetAnalysis(traces), num_processors=4)
    placement = algorithm_by_name("SHARE-REFS").place(inputs)
"""

from repro.placement.balance import (
    BalancePolicy,
    LoadBalance,
    ThreadBalance,
    Unconstrained,
    balanced_cluster_sizes,
    thread_balance_feasible,
)
from repro.placement.base import PlacementAlgorithm, PlacementInputs, PlacementMap
from repro.placement.clustering import (
    ClusteringResult,
    agglomerate,
    matrix_average_scorer,
)
from repro.placement.algorithms import (
    ClusteringPlacement,
    CoherenceTraffic,
    LoadBal,
    MaxWrites,
    MinInvs,
    MinPriv,
    MinShare,
    Random,
    ShareAddr,
    ShareRefs,
    algorithm_by_name,
    all_algorithms,
    static_sharing_algorithms,
)
from repro.placement.dynamic import measure_coherence_matrix
from repro.placement.exhaustive import (
    count_balanced_partitions,
    enumerate_balanced_partitions,
    optimal_sharing_placement,
)
from repro.placement.io import (
    load_placement,
    placement_from_json,
    placement_to_json,
    save_placement,
)
from repro.placement.quality import PlacementQuality, evaluate_placement

__all__ = [
    "PlacementMap",
    "PlacementInputs",
    "PlacementAlgorithm",
    "BalancePolicy",
    "ThreadBalance",
    "LoadBalance",
    "Unconstrained",
    "balanced_cluster_sizes",
    "thread_balance_feasible",
    "ClusteringResult",
    "agglomerate",
    "matrix_average_scorer",
    "ClusteringPlacement",
    "ShareRefs",
    "ShareAddr",
    "MinPriv",
    "MinInvs",
    "MaxWrites",
    "MinShare",
    "LoadBal",
    "Random",
    "CoherenceTraffic",
    "static_sharing_algorithms",
    "all_algorithms",
    "algorithm_by_name",
    "measure_coherence_matrix",
    "PlacementQuality",
    "evaluate_placement",
    "count_balanced_partitions",
    "enumerate_balanced_partitions",
    "optimal_sharing_placement",
    "save_placement",
    "load_placement",
    "placement_to_json",
    "placement_from_json",
]
