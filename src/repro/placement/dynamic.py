"""Measuring the dynamic coherence-traffic matrix (paper §4.2).

"In order to obtain the maximum amount of coherence traffic between
individual pairs of threads, we simulated a system with one thread per
processor and as many processors as the number of threads in the
application.  The coherence traffic measured between processor pairs
enabled direct comparisons with the inter-thread pairwise shared
references computed from the trace files."

:func:`measure_coherence_matrix` reproduces that measurement: it runs the
architecture simulator with p = t, one hardware context each, and returns
the symmetric threads x threads matrix of coherence events (invalidations
sent plus invalidation misses plus remote compulsory transfers between the
pair).  Feed it to :class:`~repro.placement.algorithms.CoherenceTraffic`
via :attr:`~repro.placement.base.PlacementInputs.coherence_matrix`.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceSet

__all__ = ["measure_coherence_matrix"]


def measure_coherence_matrix(
    trace_set: TraceSet,
    *,
    cache_words: int | None = None,
) -> np.ndarray:
    """Simulate one thread per processor and return pairwise coherence traffic.

    Args:
        trace_set: The application's traces.
        cache_words: Per-processor cache size for the measurement run; by
            default the "effectively infinite" cache is used so the
            measured traffic is pure sharing traffic, uninfluenced by
            conflict evictions.

    Returns:
        Symmetric (t, t) float matrix; entry (i, j) counts coherence events
        between threads i and j.
    """
    # Imported here: repro.arch depends only on trace/, but experiments
    # construct PlacementInputs from both packages; the local import keeps
    # placement importable without pulling the whole simulator in.
    from repro.arch.config import ArchConfig
    from repro.arch.simulator import simulate
    from repro.placement.base import PlacementMap

    t = trace_set.num_threads
    config = ArchConfig(
        num_processors=t,
        contexts_per_processor=1,
        cache_words=cache_words if cache_words is not None else ArchConfig.INFINITE_CACHE_WORDS,
    )
    identity = PlacementMap(np.arange(t, dtype=np.int64), t)
    result = simulate(trace_set, identity, config)
    matrix = np.asarray(result.pairwise_coherence, dtype=float)
    # One thread per processor, so the processor-pair matrix *is* the
    # thread-pair matrix.  The simulator records each event under
    # (requester, peer); fold both directions into a symmetric matrix.
    symmetric = matrix + matrix.T
    np.fill_diagonal(symmetric, 0.0)
    return symmetric
