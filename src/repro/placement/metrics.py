"""Cluster-pair scorers: one per sharing metric in the paper's §2.

Every scorer consumes the static :class:`~repro.trace.analysis.TraceSetAnalysis`
(or, for the dynamic algorithm, a measured coherence-traffic matrix) and
returns a :data:`~repro.placement.clustering.ClusterScorer` for the
agglomeration engine.  Scores are tuples so secondary criteria compose
lexicographically.  All scorers implement the batch ``pair_scores`` path
(one matrix product per clustering iteration).
"""

from __future__ import annotations

import numpy as np

from repro.placement.clustering import (
    ClusterScorer,
    MatrixAverageScorer,
    cross_sums,
)
from repro.trace.analysis import TraceSetAnalysis

__all__ = [
    "ShareAddrScorer",
    "MinPrivScorer",
    "share_refs_scorer",
    "share_addr_scorer",
    "min_priv_scorer",
    "min_invs_scorer",
    "max_writes_scorer",
    "min_share_scorer",
    "coherence_traffic_scorer",
]


class ShareAddrScorer:
    """SHARE-ADDR: shared references first, then references per shared address.

    "Given two candidate clusters, each with the same number of shared
    references, it picks the one with the smaller shared working set, i.e.,
    more references per shared address." (§2, item 2)
    """

    def __init__(self, refs: np.ndarray, addrs: np.ndarray) -> None:
        self.refs = np.asarray(refs, dtype=float)
        self.addrs = np.asarray(addrs, dtype=float)

    def __call__(self, cluster_a: list[int], cluster_b: list[int]) -> tuple:
        index = np.ix_(cluster_a, cluster_b)
        size = len(cluster_a) * len(cluster_b)
        total_refs = float(self.refs[index].sum())
        total_addrs = float(self.addrs[index].sum())
        density = total_refs / total_addrs if total_addrs > 0 else 0.0
        return (total_refs / size, density)

    def pair_scores_array(
        self, clusters: list[list[int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized (refs, density) scores for every cluster pair."""
        ref_sums = cross_sums(self.refs, clusters)
        addr_sums = cross_sums(self.addrs, clusters)
        sizes = np.array([len(c) for c in clusters], dtype=float)
        averaged = ref_sums / np.outer(sizes, sizes)
        with np.errstate(divide="ignore", invalid="ignore"):
            density = np.where(addr_sums > 0, ref_sums / addr_sums, 0.0)
        upper_i, upper_j = np.triu_indices(len(clusters), k=1)
        scores = np.column_stack(
            [averaged[upper_i, upper_j], density[upper_i, upper_j]]
        )
        return scores, np.column_stack([upper_i, upper_j])


class MinPrivScorer:
    """MIN-PRIV: maximize shared references; minimize private addresses.

    The secondary criterion is the (negated) private-address count of the
    would-be combined cluster, so ties in sharing fall to the merge that
    adds the least private cache footprint (§2, item 3).
    """

    def __init__(self, refs: np.ndarray, private_per_thread: np.ndarray) -> None:
        self.refs = np.asarray(refs, dtype=float)
        self.private = np.asarray(private_per_thread, dtype=float)

    def __call__(self, cluster_a: list[int], cluster_b: list[int]) -> tuple:
        index = np.ix_(cluster_a, cluster_b)
        size = len(cluster_a) * len(cluster_b)
        combined = float(self.private[cluster_a].sum() + self.private[cluster_b].sum())
        return (float(self.refs[index].sum()) / size, -combined)

    def pair_scores_array(
        self, clusters: list[list[int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized (refs, -private) scores for every cluster pair."""
        ref_sums = cross_sums(self.refs, clusters)
        sizes = np.array([len(c) for c in clusters], dtype=float)
        averaged = ref_sums / np.outer(sizes, sizes)
        cluster_private = np.array([float(self.private[c].sum()) for c in clusters])
        combined = cluster_private[:, None] + cluster_private[None, :]
        upper_i, upper_j = np.triu_indices(len(clusters), k=1)
        scores = np.column_stack(
            [averaged[upper_i, upper_j], -combined[upper_i, upper_j]]
        )
        return scores, np.column_stack([upper_i, upper_j])


def share_refs_scorer(analysis: TraceSetAnalysis) -> ClusterScorer:
    """SHARE-REFS: maximize averaged cross-cluster shared references."""
    return MatrixAverageScorer(analysis.shared_refs_matrix)


def share_addr_scorer(analysis: TraceSetAnalysis) -> ClusterScorer:
    """SHARE-ADDR scorer over the analysis's pairwise matrices."""
    return ShareAddrScorer(analysis.shared_refs_matrix, analysis.shared_addrs_matrix)


def min_priv_scorer(analysis: TraceSetAnalysis) -> ClusterScorer:
    """MIN-PRIV scorer over sharing and per-thread private counts."""
    return MinPrivScorer(
        analysis.shared_refs_matrix, analysis.private_addresses_per_thread
    )


def min_invs_scorer(analysis: TraceSetAnalysis) -> ClusterScorer:
    """MIN-INVS: combine the pair whose *separation* costs the most.

    "During clustering, the algorithm compares the cost of keeping two
    clusters separated, rather than comparing the savings in combining
    them" (§2, item 4): the cost of separation is the total (unnormalized)
    cross-cluster write-shared traffic that would cross the interconnect.
    """
    return MatrixAverageScorer(analysis.write_shared_refs_matrix, normalize=False)


def max_writes_scorer(analysis: TraceSetAnalysis) -> ClusterScorer:
    """MAX-WRITES: maximize averaged cross-cluster write-shared references."""
    return MatrixAverageScorer(analysis.write_shared_refs_matrix)


def min_share_scorer(analysis: TraceSetAnalysis) -> ClusterScorer:
    """MIN-SHARE: the deliberate worst case — run with ``maximize=False``."""
    return MatrixAverageScorer(analysis.shared_refs_matrix)


def coherence_traffic_scorer(coherence_matrix: np.ndarray) -> ClusterScorer:
    """Dynamic placement (§4.2): averaged measured coherence traffic.

    ``coherence_matrix[i, j]`` must hold the coherence operations measured
    between threads i and j when simulated one-thread-per-processor.
    """
    matrix = np.asarray(coherence_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"coherence matrix must be square, got {matrix.shape}")
    if not np.allclose(matrix, matrix.T):
        raise ValueError("coherence matrix must be symmetric")
    return MatrixAverageScorer(matrix)
