"""Placement-map serialization.

The paper's pipeline passes "maps associating threads with processors"
from the placement algorithms to the simulator (§3).  This module gives
those maps a file format — a small JSON document — so the command-line
tools (``repro-place`` / ``repro-simulate``) can be composed the same way:

.. code-block:: json

    {
      "format": "repro-placement-map",
      "version": 1,
      "num_processors": 4,
      "assignment": [0, 1, 2, 3, 0, 1, 2, 3],
      "algorithm": "SHARE-REFS",
      "app": "Water"
    }

``algorithm`` and ``app`` are provenance labels, not semantics.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.placement.base import PlacementMap
from repro.util.atomicio import atomic_write_text

__all__ = ["save_placement", "load_placement", "placement_to_json",
           "placement_from_json"]

_FORMAT = "repro-placement-map"
_VERSION = 1


def placement_to_json(
    placement: PlacementMap,
    *,
    algorithm: str = "",
    app: str = "",
) -> str:
    """Serialize a placement map to a JSON string."""
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "num_processors": placement.num_processors,
        "assignment": placement.assignment.tolist(),
        "algorithm": algorithm,
        "app": app,
    }
    return json.dumps(document, indent=2)


def placement_from_json(text: str) -> tuple[PlacementMap, dict]:
    """Parse a placement map; returns (map, provenance metadata).

    Raises:
        ValueError: On wrong format marker, unsupported version or an
            invalid assignment.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"not valid JSON: {error}") from error
    if not isinstance(document, dict) or document.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    if document.get("version") != _VERSION:
        raise ValueError(
            f"unsupported placement-map version {document.get('version')!r}"
        )
    placement = PlacementMap(document["assignment"], document["num_processors"])
    metadata = {
        "algorithm": document.get("algorithm", ""),
        "app": document.get("app", ""),
    }
    return placement, metadata


def save_placement(
    placement: PlacementMap,
    path: str | Path,
    *,
    algorithm: str = "",
    app: str = "",
) -> None:
    """Write a placement map to a JSON file (atomically: a crashed or
    disk-full write never leaves a torn document behind)."""
    atomic_write_text(
        Path(path),
        placement_to_json(placement, algorithm=algorithm, app=app) + "\n",
        encoding="ascii",
    )


def load_placement(path: str | Path) -> tuple[PlacementMap, dict]:
    """Read a placement map from a JSON file."""
    return placement_from_json(Path(path).read_text(encoding="ascii"))
