"""Exhaustive (provably optimal) sharing-based placement.

The paper argues (§4.2) that even "the best possible placement that a
sharing-based algorithm can produce" — one built from dynamically measured
coherence traffic — does not beat LOAD-BAL.  This module pushes that
argument to its logical end for small thread counts: enumerate *every*
thread-balanced partition, score each against a sharing objective, and
return the true optimum.  If the greedy SHARE-REFS heuristic were leaving
benefit on the table, the optimum would reveal it; on the reproduction's
workloads it does not (see ``tests/placement/test_exhaustive.py`` and
``benchmarks/bench_optimal_placement.py``).

Enumeration is over canonical set partitions with prescribed cluster sizes
(symmetry-broken: each cluster is identified by its smallest member, and
clusters of equal size appear in increasing order of those leaders), so
each placement is visited exactly once.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.placement.balance import balanced_cluster_sizes
from repro.placement.base import PlacementMap
from repro.trace.analysis import TraceSetAnalysis
from repro.util.validate import check_positive

__all__ = [
    "count_balanced_partitions",
    "enumerate_balanced_partitions",
    "optimal_sharing_placement",
]

#: Refuse to enumerate beyond this many partitions (keeps misuse cheap).
DEFAULT_PARTITION_LIMIT = 500_000


def count_balanced_partitions(num_threads: int, num_processors: int) -> int:
    """Number of distinct thread-balanced partitions of t threads.

    The multinomial over the size multiset, divided by the permutations of
    equal-sized clusters.
    """
    from math import comb, factorial

    sizes = balanced_cluster_sizes(num_threads, num_processors)
    total = 1
    remaining = num_threads
    for size in sizes:
        total *= comb(remaining, size)
        remaining -= size
    multiplicity: dict[int, int] = {}
    for size in sizes:
        multiplicity[size] = multiplicity.get(size, 0) + 1
    for count in multiplicity.values():
        total //= factorial(count)
    return total


def enumerate_balanced_partitions(
    num_threads: int, num_processors: int
) -> Iterator[list[list[int]]]:
    """Yield every thread-balanced partition exactly once.

    Canonical form: thread 0 always sits in the first cluster; each later
    cluster's leader (smallest member) exceeds the leaders of all earlier
    clusters of the same size.
    """
    from itertools import combinations

    sizes = balanced_cluster_sizes(num_threads, num_processors)

    def recurse(unassigned: list[int], remaining_sizes: tuple[int, ...],
                built: list[list[int]]) -> Iterator[list[list[int]]]:
        if not unassigned:
            yield [list(c) for c in built]
            return
        # Canonical: the smallest unassigned thread leads the next cluster;
        # it may lead a cluster of any size still owed (trying each
        # *distinct* size once keeps equal-sized clusters symmetry-broken,
        # since their leaders then appear in increasing order).
        leader, rest = unassigned[0], unassigned[1:]
        for size in sorted(set(remaining_sizes)):
            index = remaining_sizes.index(size)
            next_sizes = remaining_sizes[:index] + remaining_sizes[index + 1:]
            for members in combinations(rest, size - 1):
                member_set = set(members)
                cluster = [leader] + list(members)
                next_unassigned = [t for t in rest if t not in member_set]
                built.append(cluster)
                yield from recurse(next_unassigned, next_sizes, built)
                built.pop()

    yield from recurse(list(range(num_threads)), tuple(sizes), [])


def optimal_sharing_placement(
    analysis: TraceSetAnalysis,
    num_processors: int,
    *,
    matrix: np.ndarray | None = None,
    objective: Callable[[list[list[int]], np.ndarray], float] | None = None,
    partition_limit: int = DEFAULT_PARTITION_LIMIT,
) -> tuple[PlacementMap, float]:
    """The provably best thread-balanced placement for a sharing objective.

    Args:
        analysis: The application's static analysis.
        num_processors: Target processor count.
        matrix: Pairwise metric matrix; defaults to the SHARE-REFS shared
            references matrix.  The dynamic coherence matrix of
            :func:`repro.placement.dynamic.measure_coherence_matrix` is the
            other natural choice.
        objective: Maps (clusters, matrix) to a score to *maximize*;
            defaults to total within-cluster pair weight (the quantity
            Figure 1(d) of the paper totals).
        partition_limit: Upper bound on partitions to enumerate; exceeding
            it raises ``ValueError`` (use the greedy algorithms instead).

    Returns:
        (optimal placement, optimal objective value).
    """
    check_positive("partition_limit", partition_limit)
    t = analysis.num_threads
    total = count_balanced_partitions(t, num_processors)
    if total > partition_limit:
        raise ValueError(
            f"{total} balanced partitions of {t} threads on {num_processors} "
            f"processors exceeds the limit of {partition_limit}; exhaustive "
            "search is only for small instances"
        )
    if matrix is None:
        matrix = analysis.shared_refs_matrix
    matrix = np.asarray(matrix, dtype=float)

    def default_objective(clusters: list[list[int]], m: np.ndarray) -> float:
        score = 0.0
        for cluster in clusters:
            index = np.ix_(cluster, cluster)
            score += float(m[index].sum()) / 2.0  # each pair counted twice
        return score

    score_of = objective or default_objective
    best_clusters: list[list[int]] | None = None
    best_score = -np.inf
    for clusters in enumerate_balanced_partitions(t, num_processors):
        score = score_of(clusters, matrix)
        if score > best_score:
            best_score = score
            best_clusters = clusters
    assert best_clusters is not None  # t >= p guarantees >= 1 partition
    return (
        PlacementMap.from_clusters(best_clusters, t, num_processors),
        float(best_score),
    )
