"""The agglomerative clustering engine (paper §2.1).

All sharing-based placement algorithms share one skeleton: start with every
thread in its own cluster, repeatedly combine the pair of clusters with the
best sharing-metric value subject to the balance criteria, and backtrack
(undo the last combine and take the next-best choice) when the greedy path
dead-ends — "If forward progress is not possible, ... backtracking is
applied and the last combining step is undone until progress can be made"
(§2.1 step 4).

The engine is metric-agnostic: a *scorer* maps a cluster pair to a
comparable score (floats or tuples for lexicographic criteria like
SHARE-ADDR's), and a :class:`~repro.placement.balance.BalancePolicy`
decides admissibility.  If the search space is exhausted (or a backtrack
budget is hit — possible with adversarial metrics), the engine completes
the partition with a metric-blind fallback and flags the result, mirroring
the paper's observation that "+LB" algorithms sometimes "compromised on the
load balancing requirement and were unable to generate a well balanced
load".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.placement.balance import BalancePolicy, thread_balance_feasible
from repro.util.validate import check_positive

__all__ = [
    "ClusterScorer",
    "ClusteringResult",
    "agglomerate",
    "matrix_average_scorer",
    "cross_sums",
    "MatrixAverageScorer",
]

# A scorer returns a comparable score for a cluster pair; tuples give
# lexicographic secondary criteria.  Scorers may additionally provide a
# ``pair_scores(clusters)`` method returning ``[(score, (i, j)), ...]`` for
# all pairs at once; the engine uses it when present (one matrix product
# per iteration instead of thousands of tiny reductions).
ClusterScorer = Callable[[list[int], list[int]], tuple]


def cross_sums(matrix: np.ndarray, clusters: list[list[int]]) -> np.ndarray:
    """Cluster-by-cluster cross sums of a thread-pair matrix.

    ``result[i, j]`` is the sum of ``matrix[a, b]`` over threads a in
    cluster i and b in cluster j — the numerator of the paper's sharing
    metric, for every pair at once.
    """
    t = matrix.shape[0]
    membership = np.zeros((t, len(clusters)))
    for ci, cluster in enumerate(clusters):
        membership[cluster, ci] = 1.0
    return membership.T @ matrix @ membership


class MatrixAverageScorer:
    """The paper's sharing metric: averaged cross-cluster pair sum.

    sharing-metric(c_a, c_b) = sum of matrix[t_a, t_b] over t_a in c_a,
    t_b in c_b, divided by |c_a| * |c_b| (§2.1 step 2b).  The average
    normalizes the magnitude between clusters of unequal sizes.  Pass
    ``normalize=False`` for MIN-INVS's unnormalized separation cost.
    """

    def __init__(self, matrix: np.ndarray, *, normalize: bool = True) -> None:
        self.matrix = np.asarray(matrix, dtype=float)
        self.normalize = normalize

    def __call__(self, cluster_a: list[int], cluster_b: list[int]) -> tuple:
        total = float(self.matrix[np.ix_(cluster_a, cluster_b)].sum())
        if self.normalize:
            total /= len(cluster_a) * len(cluster_b)
        return (total,)

    def pair_scores_array(
        self, clusters: list[list[int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized scores for every cluster pair: (scores, index pairs)."""
        sums = cross_sums(self.matrix, clusters)
        sizes = np.array([len(c) for c in clusters], dtype=float)
        if self.normalize:
            sums = sums / np.outer(sizes, sizes)
        upper_i, upper_j = np.triu_indices(len(clusters), k=1)
        scores = sums[upper_i, upper_j][:, None]
        pairs = np.column_stack([upper_i, upper_j])
        return scores, pairs


def matrix_average_scorer(matrix: np.ndarray) -> ClusterScorer:
    """Factory kept for API symmetry; see :class:`MatrixAverageScorer`."""
    return MatrixAverageScorer(matrix)


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of one agglomeration.

    Attributes:
        clusters: Final partition, ``num_processors`` clusters.
        merges: Total combine operations performed (including undone ones).
        backtracks: How many combines were undone.
        relaxed: True when the metric-blind fallback had to finish the job.
    """

    clusters: list[list[int]]
    merges: int
    backtracks: int
    relaxed: bool


def _ordered_candidates(
    clusters: list[list[int]], scorer: ClusterScorer, maximize: bool
) -> list[tuple[int, int]]:
    """All cluster index pairs, best score first (deterministic ties).

    Returns an (n_pairs, 2) integer array of cluster index pairs, ordered
    by score (lexicographic across score components), ties broken by the
    index pair for determinism.
    """
    batch = getattr(scorer, "pair_scores_array", None)
    if batch is not None:
        scores, pairs = batch(clusters)
    else:
        rows = [
            (scorer(clusters[i], clusters[j]), (i, j))
            for i in range(len(clusters))
            for j in range(i + 1, len(clusters))
        ]
        scores = np.array([list(score) for score, _ in rows], dtype=float)
        pairs = np.array([pair for _, pair in rows], dtype=np.int64)
    if maximize:
        scores = -scores
    # np.lexsort: last key is primary -> pair indices first (least
    # significant), then score components from least to most significant.
    keys = [pairs[:, 1], pairs[:, 0]]
    keys += [scores[:, c] for c in range(scores.shape[1] - 1, -1, -1)]
    order = np.lexsort(tuple(keys))
    return pairs[order]


def _merge(clusters: list[list[int]], i: int, j: int) -> list[list[int]]:
    """New cluster list with clusters i and j combined (i < j)."""
    merged = clusters[i] + clusters[j]
    return (
        [c for k, c in enumerate(clusters) if k not in (i, j)] + [merged]
    )


def _fallback_finish(
    clusters: list[list[int]],
    num_processors: int,
    lengths: np.ndarray,
    num_threads: int,
) -> list[list[int]]:
    """Metric-blind completion: merge lightest clusters, preferring merges
    that keep exact thread balance reachable; relax if none do."""
    clusters = [list(c) for c in clusters]
    while len(clusters) > num_processors:
        order = sorted(
            range(len(clusters)), key=lambda k: int(lengths[clusters[k]].sum())
        )
        chosen: tuple[int, int] | None = None
        for a_pos in range(len(order)):
            for b_pos in range(a_pos + 1, len(order)):
                i, j = sorted((order[a_pos], order[b_pos]))
                merged = _merge(clusters, i, j)
                sizes = [len(c) for c in merged]
                if thread_balance_feasible(sizes, num_threads, num_processors):
                    chosen = (i, j)
                    break
            if chosen:
                break
        if chosen is None:
            # Nothing keeps balance reachable: merge the two lightest.
            chosen = tuple(sorted((order[0], order[1])))  # type: ignore[assignment]
        clusters = _merge(clusters, chosen[0], chosen[1])
    return clusters


def agglomerate(
    num_threads: int,
    num_processors: int,
    scorer: ClusterScorer,
    balance: BalancePolicy,
    lengths: Sequence[int] | np.ndarray,
    *,
    maximize: bool = True,
    max_backtracks: int = 2000,
    incremental: bool = True,
) -> ClusteringResult:
    """Run the §2.1 clustering algorithm.

    Args:
        num_threads: Thread count t (each starts in its own cluster).
        num_processors: Target cluster count p.
        scorer: Cluster-pair metric; higher is combined first when
            ``maximize``, lower first otherwise.
        balance: Admissibility of each combine.
        lengths: Per-thread instruction lengths (consulted by load-balance
            policies and by the fallback).
        maximize: Direction of the metric.
        max_backtracks: Search budget before the fallback finishes the
            partition.
        incremental: Use incrementally maintained search state (per-cluster
            size/load arrays plus one vectorized admissibility mask per
            state) instead of re-deriving everything per candidate.  The
            trajectory — and therefore the result — is bit-identical to
            the reference loop (``incremental=False``), which is kept as
            the differential-testing oracle; policies without a
            :meth:`~repro.placement.balance.BalancePolicy.pair_mask`
            automatically fall back to the reference loop.

    Returns:
        A :class:`ClusteringResult` with exactly ``num_processors``
        clusters covering every thread.
    """
    check_positive("num_threads", num_threads)
    check_positive("num_processors", num_processors)
    if num_processors > num_threads:
        raise ValueError(
            f"cannot form {num_processors} non-empty clusters from "
            f"{num_threads} threads"
        )
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size != num_threads:
        raise ValueError(f"expected {num_threads} lengths, got {lengths.size}")

    if incremental:
        fast = _agglomerate_incremental(
            num_threads, num_processors, scorer, balance, lengths,
            maximize=maximize, max_backtracks=max_backtracks,
        )
        if fast is not None:
            return fast

    clusters: list[list[int]] = [[tid] for tid in range(num_threads)]
    # Each stack level: (clusters before the merge, candidate order, index
    # of the next candidate to try on re-entry).
    stack: list[tuple[list[list[int]], np.ndarray, int]] = []
    merges = 0
    backtracks = 0
    candidates = _ordered_candidates(clusters, scorer, maximize)
    next_index = 0

    while len(clusters) > num_processors:
        chosen: tuple[int, int] | None = None
        cluster_sizes = [len(c) for c in clusters]
        for k in range(next_index, len(candidates)):
            i, j = int(candidates[k][0]), int(candidates[k][1])
            sizes = [
                s for idx, s in enumerate(cluster_sizes) if idx not in (i, j)
            ] + [cluster_sizes[i] + cluster_sizes[j]]
            if balance.allows(
                clusters[i], clusters[j], sizes, lengths, num_threads,
                num_processors,
            ):
                chosen = (i, j)
                next_index = k + 1
                break
        if chosen is None:
            if not stack or backtracks >= max_backtracks:
                finished = _fallback_finish(
                    clusters, num_processors, lengths, num_threads
                )
                return ClusteringResult(finished, merges, backtracks, relaxed=True)
            clusters, candidates, next_index = stack.pop()
            backtracks += 1
            continue
        stack.append(([list(c) for c in clusters], candidates, next_index))
        clusters = _merge(clusters, chosen[0], chosen[1])
        merges += 1
        candidates = _ordered_candidates(clusters, scorer, maximize)
        next_index = 0

    return ClusteringResult(clusters, merges, backtracks, relaxed=False)


def _agglomerate_incremental(
    num_threads: int,
    num_processors: int,
    scorer: ClusterScorer,
    balance: BalancePolicy,
    lengths: np.ndarray,
    *,
    maximize: bool,
    max_backtracks: int,
) -> ClusteringResult | None:
    """The incremental-state twin of the reference loop in ``agglomerate``.

    Same search, different bookkeeping: per-cluster thread counts and
    instruction loads are carried across merges (and saved on the
    backtrack stack) instead of being re-derived per candidate, and each
    state's admissibility is one vectorized ``pair_mask`` call instead of
    thousands of per-pair ``allows`` calls.  Policies are pure functions
    of that state, so every decision — merge choice, backtrack, fallback —
    lands on exactly the candidates the reference loop picks.

    Returns ``None`` when the policy offers no vectorized form, signalling
    the caller to run the reference loop instead.
    """
    clusters: list[list[int]] = [[tid] for tid in range(num_threads)]
    sizes = np.ones(num_threads, dtype=np.int64)
    loads = lengths.copy()
    candidates = _ordered_candidates(clusters, scorer, maximize)
    mask = balance.pair_mask(candidates, sizes, loads, num_threads,
                             num_processors)
    if mask is None:
        return None
    # Stack levels mirror the reference loop's, extended with the arrays
    # and mask of the state (all treated as immutable once pushed).
    stack: list[tuple[list[list[int]], np.ndarray, int,
                      np.ndarray, np.ndarray, np.ndarray]] = []
    merges = 0
    backtracks = 0
    next_index = 0

    while len(clusters) > num_processors:
        admissible = np.flatnonzero(mask[next_index:])
        if admissible.size == 0:
            if not stack or backtracks >= max_backtracks:
                finished = _fallback_finish(
                    clusters, num_processors, lengths, num_threads
                )
                return ClusteringResult(finished, merges, backtracks,
                                        relaxed=True)
            clusters, candidates, next_index, sizes, loads, mask = stack.pop()
            backtracks += 1
            continue
        k = next_index + int(admissible[0])
        i, j = int(candidates[k][0]), int(candidates[k][1])
        stack.append((clusters, candidates, k + 1, sizes, loads, mask))
        clusters = _merge(clusters, i, j)
        # _merge appends the union at the end; mirror that for the arrays.
        keep = [idx for idx in range(len(sizes)) if idx not in (i, j)]
        sizes = np.append(sizes[keep], sizes[i] + sizes[j])
        loads = np.append(loads[keep], loads[i] + loads[j])
        merges += 1
        candidates = _ordered_candidates(clusters, scorer, maximize)
        mask = balance.pair_mask(candidates, sizes, loads, num_threads,
                                 num_processors)
        next_index = 0

    return ClusteringResult(clusters, merges, backtracks, relaxed=False)
