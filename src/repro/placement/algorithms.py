"""The placement-algorithm family (paper §2, items 1-9, plus §4.2).

Fifteen algorithms:

======================  =====================================================
SHARE-REFS              maximize averaged cross-cluster shared references
SHARE-ADDR              ... then references per shared address
MIN-PRIV                ... then fewest private addresses per processor
MIN-INVS                maximize the cost of keeping clusters separated
MAX-WRITES              maximize write-shared references
MIN-SHARE               deliberate worst case: minimize shared references
<each of the above>+LB  load-balance (10% tolerance) instead of thread-balance
LOAD-BAL                perfect load balance from dynamic thread lengths
RANDOM                  thread-balanced random baseline
COHERENCE-TRAFFIC       dynamic: measured coherence traffic as the metric
======================  =====================================================
"""

from __future__ import annotations

import numpy as np

from repro.placement.balance import BalancePolicy, LoadBalance, ThreadBalance
from repro.placement.base import PlacementAlgorithm, PlacementInputs, PlacementMap
from repro.placement.clustering import ClusterScorer, agglomerate
from repro.placement.metrics import (
    coherence_traffic_scorer,
    max_writes_scorer,
    min_invs_scorer,
    min_priv_scorer,
    min_share_scorer,
    share_addr_scorer,
    share_refs_scorer,
)

__all__ = [
    "ClusteringPlacement",
    "ShareRefs",
    "ShareAddr",
    "MinPriv",
    "MinInvs",
    "MaxWrites",
    "MinShare",
    "LoadBal",
    "Random",
    "CoherenceTraffic",
    "static_sharing_algorithms",
    "all_algorithms",
    "algorithm_by_name",
]


class ClusteringPlacement(PlacementAlgorithm):
    """Shared skeleton of every sharing-based algorithm.

    Subclasses define the metric (a scorer factory over the inputs) and the
    direction; the constructor's ``load_balanced`` flag switches the
    combine criterion from thread balance to the "+LB" 10%-tolerance load
    balance (§2, item 8) and appends "+LB" to the name.
    """

    base_name: str = "UNNAMED"
    maximize: bool = True

    def __init__(self, load_balanced: bool = False, *, tolerance: float = 0.10) -> None:
        self.load_balanced = load_balanced
        self.name = self.base_name + ("+LB" if load_balanced else "")
        self._balance: BalancePolicy = (
            LoadBalance(tolerance) if load_balanced else ThreadBalance()
        )

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """The cluster-pair metric this algorithm clusters by."""
        raise NotImplementedError

    def place(self, inputs: PlacementInputs) -> PlacementMap:
        """Cluster threads with the metric and balance criteria."""
        result = agglomerate(
            inputs.num_threads,
            inputs.num_processors,
            self.scorer(inputs),
            self._balance,
            inputs.thread_lengths,
            maximize=self.maximize,
            incremental=inputs.incremental,
        )
        return PlacementMap.from_clusters(
            result.clusters, inputs.num_threads, inputs.num_processors
        )


class ShareRefs(ClusteringPlacement):
    """§2 item 1: the basic sharing algorithm."""

    base_name = "SHARE-REFS"

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """Averaged cross-cluster shared references."""
        return share_refs_scorer(inputs.analysis)


class ShareAddr(ClusteringPlacement):
    """§2 item 2: shared references per shared address."""

    base_name = "SHARE-ADDR"

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """Shared references, density tie-break."""
        return share_addr_scorer(inputs.analysis)


class MinPriv(ClusteringPlacement):
    """§2 item 3: maximize sharing, minimize private addresses."""

    base_name = "MIN-PRIV"

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """Shared references, fewest-private-addresses tie-break."""
        return min_priv_scorer(inputs.analysis)


class MinInvs(ClusteringPlacement):
    """§2 item 4: minimize cross-processor invalidation-causing references."""

    base_name = "MIN-INVS"

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """Unnormalized cross-cluster write-shared separation cost."""
        return min_invs_scorer(inputs.analysis)


class MaxWrites(ClusteringPlacement):
    """§2 item 5: maximize co-located write-shared references."""

    base_name = "MAX-WRITES"

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """Averaged cross-cluster write-shared references."""
        return max_writes_scorer(inputs.analysis)


class MinShare(ClusteringPlacement):
    """§2 item 6: the deliberate worst case for sharing."""

    base_name = "MIN-SHARE"
    maximize = False

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """Averaged shared references, combined smallest-first."""
        return min_share_scorer(inputs.analysis)


class CoherenceTraffic(ClusteringPlacement):
    """§4.2: placement from *dynamically measured* coherence traffic.

    "We implemented a placement algorithm that used the dynamically
    measured coherence traffic as the sharing metric.  Since it is based on
    runtime information, it represents the best possible placement that a
    sharing-based algorithm can produce."  The measured matrix arrives via
    :attr:`PlacementInputs.coherence_matrix` (see
    :func:`repro.placement.dynamic.measure_coherence_matrix`).
    """

    base_name = "COHERENCE-TRAFFIC"

    def scorer(self, inputs: PlacementInputs) -> ClusterScorer:
        """Averaged measured coherence traffic (requires the matrix)."""
        if inputs.coherence_matrix is None:
            raise ValueError(
                "COHERENCE-TRAFFIC placement needs inputs.coherence_matrix "
                "(measure it with repro.placement.dynamic.measure_coherence_matrix)"
            )
        if inputs.coherence_matrix.shape != (inputs.num_threads, inputs.num_threads):
            raise ValueError(
                f"coherence matrix shape {inputs.coherence_matrix.shape} does "
                f"not match {inputs.num_threads} threads"
            )
        return coherence_traffic_scorer(inputs.coherence_matrix)


class LoadBal(PlacementAlgorithm):
    """§2 item 7: LOAD-BAL — balance dynamic thread lengths.

    Longest-processing-time greedy: threads in decreasing length order,
    each to the least-loaded processor.  For the paper's workloads this is
    within a fraction of a percent of a perfectly balanced execution.
    """

    name = "LOAD-BAL"

    def place(self, inputs: PlacementInputs) -> PlacementMap:
        """Longest-processing-time greedy over dynamic thread lengths."""
        lengths = inputs.thread_lengths
        # Decreasing length; ties by thread id for determinism.
        order = sorted(range(inputs.num_threads), key=lambda tid: (-lengths[tid], tid))
        loads = np.zeros(inputs.num_processors, dtype=np.int64)
        assignment = np.zeros(inputs.num_threads, dtype=np.int64)
        for tid in order:
            proc = int(loads.argmin())
            assignment[tid] = proc
            loads[proc] += lengths[tid]
        return PlacementMap(assignment, inputs.num_processors)


class Random(PlacementAlgorithm):
    """§2 item 9: RANDOM — the thread-balanced random baseline.

    "This is often what a low-overhead runtime scheduler would adopt,
    given no a priori application knowledge."
    """

    name = "RANDOM"

    def place(self, inputs: PlacementInputs) -> PlacementMap:
        """Shuffle the threads and deal them round-robin."""
        order = inputs.rng.permutation(inputs.num_threads)
        assignment = np.zeros(inputs.num_threads, dtype=np.int64)
        for position, tid in enumerate(order):
            assignment[tid] = position % inputs.num_processors
        return PlacementMap(assignment, inputs.num_processors)


_STATIC_SHARING_CLASSES: tuple[type[ClusteringPlacement], ...] = (
    ShareRefs, ShareAddr, MinPriv, MinInvs, MaxWrites, MinShare,
)


def static_sharing_algorithms(*, load_balanced: bool = False) -> list[ClusteringPlacement]:
    """The six static sharing-based algorithms (§2 items 1-6), optionally
    in their "+LB" versions (item 8)."""
    return [cls(load_balanced=load_balanced) for cls in _STATIC_SHARING_CLASSES]


def all_algorithms(*, include_dynamic: bool = False) -> list[PlacementAlgorithm]:
    """Every algorithm the paper evaluates.

    Six sharing algorithms, their six "+LB" versions, LOAD-BAL and RANDOM
    (14); with ``include_dynamic``, COHERENCE-TRAFFIC as well (15).
    """
    algorithms: list[PlacementAlgorithm] = []
    algorithms += static_sharing_algorithms()
    algorithms += static_sharing_algorithms(load_balanced=True)
    algorithms.append(LoadBal())
    algorithms.append(Random())
    if include_dynamic:
        algorithms.append(CoherenceTraffic())
    return algorithms


def algorithm_by_name(name: str) -> PlacementAlgorithm:
    """Instantiate an algorithm from its paper name (e.g. "SHARE-REFS+LB")."""
    for algorithm in all_algorithms(include_dynamic=True):
        if algorithm.name.lower() == name.lower():
            return algorithm
    known = ", ".join(a.name for a in all_algorithms(include_dynamic=True))
    raise KeyError(f"unknown placement algorithm {name!r}; known: {known}")
