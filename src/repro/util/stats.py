"""Statistics exactly as the paper reports them.

Table 2 and Table 4 of the paper report, for per-thread (or per-thread-pair)
quantities:

* the **mean**;
* the **percent deviation** ("Dev(%)"): the standard deviation expressed as
  a percentage of the mean;
* the **absolute deviation** (Table 4 footnote): the standard deviation in
  the units of the mean — "Absolute deviation takes into account the size of
  the mean, and therefore diminishes the effect of a large standard deviation
  when the mean is small.  For example, Vandermonde has a deviation of 386%,
  a mean of 0.01% and the absolute deviation is only 0.04%."  That worked
  example identifies the paper's absolute deviation as
  ``percent_deviation / 100 * mean``, i.e. the plain standard deviation.

We use the population standard deviation (``ddof=0``) throughout: the paper
measures a complete population (all threads of a run), not a sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "mean",
    "population_std",
    "percent_deviation",
    "absolute_deviation",
    "Summary",
    "summarize",
]


def _as_array(values: Iterable[float]) -> np.ndarray:
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=float)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D sequence of values, got shape {array.shape}")
    if array.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return array


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    return float(_as_array(values).mean())


def population_std(values: Iterable[float]) -> float:
    """Population standard deviation (ddof=0) of a non-empty sequence."""
    return float(_as_array(values).std(ddof=0))


def percent_deviation(values: Iterable[float]) -> float:
    """Standard deviation as a percentage of the mean (the paper's "Dev(%)").

    A zero mean with zero spread is reported as 0.0 (a perfectly uniform,
    all-zero population); a zero mean with non-zero spread is undefined and
    raises ``ZeroDivisionError`` to surface the modelling error loudly.
    """
    array = _as_array(values)
    std = float(array.std(ddof=0))
    mu = float(array.mean())
    if mu == 0.0:
        if std == 0.0:
            return 0.0
        raise ZeroDivisionError("percent deviation undefined: zero mean, non-zero spread")
    return 100.0 * std / abs(mu)


def absolute_deviation(values: Iterable[float]) -> float:
    """The paper's "absolute deviation": the standard deviation in mean units.

    Equivalent to ``percent_deviation(values) / 100 * mean(values)`` (see the
    Vandermonde worked example in the paper's summary section).
    """
    return population_std(values)


@dataclass(frozen=True)
class Summary:
    """Mean / deviation summary of one measured characteristic.

    Mirrors one (Mean, Dev%) column pair of the paper's Table 2.
    """

    mean: float
    percent_dev: float
    absolute_dev: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} (dev {self.percent_dev:.1f}%)"


def summarize(values: Sequence[float] | np.ndarray) -> Summary:
    """Summarize a population the way the paper's tables do."""
    array = _as_array(values)
    mu = float(array.mean())
    std = float(array.std(ddof=0))
    if mu == 0.0:
        pct = 0.0 if std == 0.0 else float("inf")
    else:
        pct = 100.0 * std / abs(mu)
    return Summary(mean=mu, percent_dev=pct, absolute_dev=std, count=int(array.size))
