"""Deterministic random-number streams.

The reproduction must be bit-for-bit repeatable: every table and figure is
regenerated from synthetic workloads, so the workload generators, the RANDOM
placement algorithm and any tie-breaking randomness all draw from named
streams derived from a single experiment seed.  Deriving independent streams
by *name* (rather than sharing one generator) means adding a new consumer of
randomness never perturbs the values seen by existing consumers.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStreams"]

# Mixed into every derived seed so that unrelated uses of the same integer
# seed elsewhere in a host application cannot collide with our streams.
_NAMESPACE = "repro.thekkath-eggers-1994"


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a path of names.

    The derivation is a SHA-256 hash of the namespace, the root seed and the
    name path, so it is stable across Python versions and platforms (unlike
    ``hash()``).

    >>> derive_seed(42, "workload", "fft") == derive_seed(42, "workload", "fft")
    True
    >>> derive_seed(42, "workload", "fft") != derive_seed(42, "workload", "gauss")
    True
    """
    digest = hashlib.sha256()
    digest.update(_NAMESPACE.encode())
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "big") >> 1


class RngStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Each distinct name path yields an independent deterministic stream:

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("workload", "fft")
    >>> b = streams.get("workload", "fft")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def get(self, *names: str | int) -> np.random.Generator:
        """Return a fresh generator for the given name path.

        Repeated calls with the same path return independent generator
        objects positioned at the same starting state.
        """
        return np.random.default_rng(derive_seed(self.seed, *names))

    def child(self, *names: str | int) -> "RngStreams":
        """Return a sub-factory rooted at the given name path."""
        return RngStreams(derive_seed(self.seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed})"
