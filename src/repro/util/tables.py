"""Minimal ASCII table rendering for experiment reports.

The experiment harness prints the same rows the paper's tables report; this
module owns the (purely cosmetic) alignment logic so the table builders in
``repro.experiments`` stay focused on content.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _render_cell(value: object, float_format: str) -> str:
    if value is None:
        # A degraded partial-grid render: the cell's simulation is missing
        # (it failed and was not recomputed); never silently a number.
        return "MISSING"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = ".2f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(format_table(["app", "time"], [["fft", 1.5]]))
    app | time
    ----+-----
    fft | 1.50
    """
    if not headers:
        raise ValueError("a table needs at least one column")
    rendered = [[_render_cell(cell, float_format) for cell in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rendered)
    return "\n".join(lines)
