"""Checksummed entry families: one verify/commit/evict discipline.

Both persistent caches in the pipeline — the simulation
:class:`~repro.experiments.cache.ResultStore` and the trace
:class:`~repro.trace.analysis_cache.AnalysisCache` — keep content-addressed
entries under a directory, each paired with a ``.sha256`` sidecar, committed
crash-safely and *verified on every load*: an entry whose bytes no longer
match its sidecar (bit rot, a torn write from an unhardened writer, an
injected ``corrupt``/``truncate`` fault) is logged, evicted and recomputed,
never returned.  This module is that shared discipline, extracted so the two
stores cannot drift apart (they used to carry near-duplicate code paths).

The commit protocol per entry:

1. write the payload to a uniquely named temporary file in the directory;
2. flush + ``fsync`` it, so the bytes are durable before they are visible;
3. under the directory's commit lock, write the sidecar atomically and
   ``os.replace`` the temporary onto the entry name;
4. best-effort ``fsync`` of the directory.

The per-directory commit lock pairs the sidecar write and the entry rename
as one unit for in-process readers and writers (the service's executor pool
runs several engine executions against one directory).  Cross-process races
remain possible and remain benign: a mismatched pair degrades to
evict-and-recompute, never to torn data.
"""

from __future__ import annotations

import logging
import os
import threading
from pathlib import Path
from typing import Callable

from repro.util.atomicio import atomic_write_text, fsync_directory, sha256_hex

__all__ = ["VerifiedDirectory", "commit_lock_for"]

log = logging.getLogger(__name__)

# One commit lock per directory (process-wide), shared by every
# VerifiedDirectory pointed at the same path.
_COMMIT_LOCKS: dict[str, threading.Lock] = {}
_COMMIT_LOCKS_GUARD = threading.Lock()


def commit_lock_for(directory: Path) -> threading.Lock:
    """The process-wide commit lock of one store directory."""
    key = str(Path(directory).resolve())
    with _COMMIT_LOCKS_GUARD:
        lock = _COMMIT_LOCKS.get(key)
        if lock is None:
            lock = _COMMIT_LOCKS[key] = threading.Lock()
        return lock


class VerifiedDirectory:
    """Sidecar-checksummed entries under one directory.

    Args:
        directory: Store root (created if missing).
        checksum: Write and verify sha256 sidecars (on by default; overhead
            benchmarks turn it off to measure the cost).
        fsync: Sync entry bytes and renames to disk (on by default).
        fault_site: :mod:`repro.faults` site name for this store's write
            path (``fire`` before writing, ``mangle`` after the commit), or
            None to disable the injection hooks.
        logger: Logger for eviction/persist warnings — pass the owning
            store's logger so damage reports carry its name (tests and
            operators filter on it); defaults to this module's.
    """

    def __init__(self, directory: str | Path, *, checksum: bool = True,
                 fsync: bool = True, fault_site: str | None = None,
                 logger: logging.Logger | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checksum = bool(checksum)
        self.fsync = bool(fsync)
        self.fault_site = fault_site
        self.log = logger if logger is not None else log
        self.lock = commit_lock_for(self.directory)

    def path(self, name: str) -> Path:
        """The entry's path (no existence implied)."""
        return self.directory / name

    @staticmethod
    def sidecar(path: Path) -> Path:
        """The checksum sidecar of an entry path."""
        return path.with_name(path.name + ".sha256")

    # -- load ------------------------------------------------------------

    def evict(self, name: str) -> None:
        """Remove an entry and its sidecar (tolerates concurrent eviction)."""
        path = self.path(name)
        with self.lock:
            for victim in (path, self.sidecar(path)):
                try:
                    victim.unlink()
                except OSError:  # pragma: no cover - concurrent eviction
                    pass

    def load(
        self,
        name: str,
        decoder: Callable[[bytes], object],
        *,
        errors: tuple[type[BaseException], ...] = (),
        describe: str = "entry",
    ) -> object | None:
        """Decode a verified entry, or None.

        The entry and its sidecar are snapshotted under the commit lock
        (so an in-process writer can never be caught between the two);
        the checksum check and ``decoder`` run outside it.  A checksum
        mismatch, a filesystem error, or any exception in ``errors``
        raised by the decoder is treated as damage: the entry is logged
        and evicted — entry and sidecar — so the caller recomputes it and
        the next commit writes a clean pair.  A damaged cache never
        aborts the computation it backs.
        """
        path = self.path(name)
        try:
            with self.lock:
                if not path.exists():
                    return None
                data = path.read_bytes()
                sidecar = self.sidecar(path)
                expected = (sidecar.read_text(encoding="ascii").strip()
                            if self.checksum and sidecar.exists() else None)
            if expected is not None:
                actual = sha256_hex(data)
                if actual != expected:
                    raise ValueError(
                        f"checksum mismatch (expected {expected[:12]}…, "
                        f"got {actual[:12]}…)"
                    )
            return decoder(data)
        except (OSError, ValueError) + tuple(errors) as exc:
            self.log.warning(
                "evicting unreadable %s %s (%s: %s); it will be recomputed",
                describe, path.name, type(exc).__name__, exc,
            )
            self.evict(name)
            return None

    # -- commit ----------------------------------------------------------

    def commit(self, name: str, data: bytes) -> bool:
        """Persist ``data`` under ``name``; True if it was committed.

        The commit point is the final rename: a crash at any earlier
        moment leaves only a temporary file (cleaned up on the next
        attempt's failure path) and possibly a stale sidecar, both
        invisible to :meth:`load`.  A filesystem error (disk full,
        permissions) degrades to a logged warning and False — the caller
        still holds the in-memory value, so a sick disk never aborts the
        computation; the entry is simply recomputed next run.
        """
        path = self.path(name)
        temporary = path.with_name(
            f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            if self.fault_site is not None:
                from repro import faults

                faults.fire(self.fault_site, context=path.name)
            with open(temporary, "wb") as stream:
                stream.write(data)
                stream.flush()
                if self.fsync:
                    os.fsync(stream.fileno())
            # Sidecar + rename commit as one unit under the per-directory
            # lock: an in-process reader (or racing writer of the same
            # name) can never pair this entry's bytes with another
            # writer's sidecar.
            with self.lock:
                if self.checksum:
                    atomic_write_text(
                        self.sidecar(path), sha256_hex(data) + "\n",
                        encoding="ascii", fsync=self.fsync, fault_site=None,
                    )
                os.replace(temporary, path)
            if self.fsync:
                fsync_directory(self.directory)
        except OSError as exc:
            try:
                temporary.unlink()
            except OSError:
                pass
            self.log.warning(
                "failed to persist %s (%s: %s); the in-memory value is "
                "unaffected and will be recomputed next run",
                path.name, type(exc).__name__, exc,
            )
            return False
        except BaseException:
            try:
                temporary.unlink()
            except OSError:
                pass
            raise
        if self.fault_site is not None:
            from repro import faults

            faults.mangle(self.fault_site, path)
        return True
