"""ASCII bar charts for the figure renderers.

The paper's Figures 2-5 are grouped/stacked bar charts; the report's
tables carry the exact numbers and these charts make the *shapes* visible
in a terminal: who is below 1.0, where the crossovers fall, how the miss
mix shifts across configurations.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["horizontal_bars", "stacked_bars"]

_FULL = "#"


def horizontal_bars(
    values: Mapping[str, float],
    *,
    width: int = 40,
    reference: float | None = None,
    value_format: str = ".3f",
) -> str:
    """Labelled horizontal bars, optionally with a reference tick.

    >>> print(horizontal_bars({"a": 1.0, "b": 0.5}, width=8))
    a | ######## 1.000
    b | ####     0.500
    """
    if not values:
        raise ValueError("no values to chart")
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    peak = max(max(values.values()), reference or 0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    ref_col = round(width * (reference / peak)) if reference else None

    lines = []
    for label, value in values.items():
        filled = round(width * (value / peak))
        bar = list(_FULL * filled + " " * (width - filled))
        if ref_col is not None and 0 < ref_col <= width and filled < ref_col:
            bar[ref_col - 1] = "|"
        lines.append(
            f"{label.ljust(label_width)} | {''.join(bar)} "
            f"{format(value, value_format)}"
        )
    return "\n".join(lines)


def stacked_bars(
    rows: Mapping[str, Sequence[float]],
    segment_labels: Sequence[str],
    *,
    width: int = 40,
) -> str:
    """Stacked horizontal bars with a legend (for miss decompositions).

    Each row's segments are drawn with successive glyphs; rows are scaled
    to the largest row total.

    >>> print(stacked_bars({"x": [2, 2]}, ["a", "b"], width=8))
    legend: a=1 b=2
    x | 11112222 (total 4)
    """
    if not rows:
        raise ValueError("no rows to chart")
    glyphs = "123456789"
    if len(segment_labels) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} segments supported")
    for label, segments in rows.items():
        if len(segments) != len(segment_labels):
            raise ValueError(
                f"row {label!r} has {len(segments)} segments, expected "
                f"{len(segment_labels)}"
            )
    peak = max(sum(segments) for segments in rows.values()) or 1.0
    label_width = max(len(label) for label in rows)

    legend = "legend: " + " ".join(
        f"{name}={glyph}" for name, glyph in zip(segment_labels, glyphs)
    )
    lines = [legend]
    for label, segments in rows.items():
        bar = []
        for glyph, value in zip(glyphs, segments):
            bar.append(glyph * round(width * (value / peak)))
        lines.append(
            f"{label.ljust(label_width)} | {''.join(bar)} "
            f"(total {sum(segments):g})"
        )
    return "\n".join(lines)
