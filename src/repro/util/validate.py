"""Argument-validation helpers.

Constructors across the package validate their inputs eagerly so that a bad
architectural parameter or workload knob fails at configuration time with a
named error, not deep inside a simulation with an index error.
"""

from __future__ import annotations

from typing import Sized

__all__ = [
    "check_positive",
    "check_non_empty",
    "check_power_of_two",
    "check_range",
]


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if allowed).

    NaN is rejected explicitly: every ordered comparison against NaN is
    false, so the sign checks alone would silently accept it and the bad
    value would surface far from the parameter that carried it.
    """
    if value != value:  # NaN is the only value unequal to itself
        raise ValueError(f"{name} must be a number, got {value!r}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_empty(name: str, value: Sized) -> None:
    """Raise ``ValueError`` if a container is empty."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two.

    Cache geometry (block size, number of sets) must be a power of two so
    that set indexing can be done with shifts and masks.
    """
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``.

    An inverted bound is a bug at the *call site*, not bad user input, and
    is reported as such rather than as an unsatisfiable value error.
    """
    if low > high:
        raise ValueError(
            f"invalid bounds for {name}: low {low!r} exceeds high {high!r}"
        )
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
