"""Shared utilities: deterministic RNG streams, paper-definition statistics,
ASCII table rendering and validation helpers.

These are deliberately dependency-light; every other subpackage builds on
them.
"""

from repro.util.rng import RngStreams, derive_seed
from repro.util.stats import (
    absolute_deviation,
    mean,
    percent_deviation,
    population_std,
    summarize,
    Summary,
)
from repro.util.ascii_chart import horizontal_bars, stacked_bars
from repro.util.tables import format_table
from repro.util.validate import (
    check_non_empty,
    check_positive,
    check_power_of_two,
    check_range,
)

__all__ = [
    "RngStreams",
    "derive_seed",
    "mean",
    "population_std",
    "percent_deviation",
    "absolute_deviation",
    "summarize",
    "Summary",
    "format_table",
    "horizontal_bars",
    "stacked_bars",
    "check_positive",
    "check_non_empty",
    "check_power_of_two",
    "check_range",
]
