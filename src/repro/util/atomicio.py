"""Crash-safe file writes: write-tmp → fsync → rename.

Every artifact the pipeline persists (result-store ``.npz`` entries,
checksum sidecars, JSON/CSV/HTML exports, the rendered report) goes
through these helpers, so a crash — or an injected fault — at any moment
leaves either the complete previous file or the complete new file at the
target path, never a torn hybrid.

The protocol:

1. write the full payload to a uniquely named temporary file *in the
   destination directory* (same filesystem, so the final rename cannot
   degrade to a copy);
2. flush and ``fsync`` the temporary file, so the bytes are durable
   before they become visible;
3. ``os.replace`` onto the destination (atomic on POSIX);
4. best-effort ``fsync`` of the directory, making the rename itself
   durable.

The helpers double as fault-injection points (site ``"artifact"`` by
default): a planned ``disk-full`` fault raises ``OSError`` *before* any
byte reaches the destination, which is exactly the guarantee callers rely
on — a failed write never damages the previous artifact.
"""

from __future__ import annotations

import hashlib
import os
import threading
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "sha256_hex",
]


def sha256_hex(data: bytes) -> str:
    """The SHA-256 of ``data`` as lowercase hex (artifact checksums)."""
    return hashlib.sha256(data).hexdigest()


def fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (makes renames durable).

    Silently skipped where directories cannot be opened for reading
    (some platforms/filesystems); the write itself is already synced.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path,
    data: bytes,
    *,
    fsync: bool = True,
    fault_site: str | None = "artifact",
) -> None:
    """Atomically replace ``path`` with ``data`` (tmp → fsync → rename).

    Args:
        path: Destination file.
        data: Full payload.
        fsync: Sync file (and directory) before/after the rename.  Leave
            on for artifacts that must survive power loss; benchmarks may
            disable it to measure the cost.
        fault_site: Fault-injection site checked before writing (None
            disables the hook).  An injected ``disk-full`` fault raises
            here, with the destination untouched.
    """
    path = Path(path)
    if fault_site is not None:
        from repro import faults

        faults.fire(fault_site, context=path.name)
    # Unique per writer *thread*, not just per process: concurrent
    # threads targeting the same path (the service's executor pool) must
    # not share a temporary file.
    temporary = path.parent / (
        f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    try:
        with open(temporary, "wb") as stream:
            stream.write(data)
            stream.flush()
            if fsync:
                os.fsync(stream.fileno())
        os.replace(temporary, path)
    except BaseException:
        try:
            temporary.unlink()
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(path.parent)


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
    fault_site: str | None = "artifact",
) -> None:
    """:func:`atomic_write_bytes` for text payloads."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync,
                       fault_site=fault_site)
