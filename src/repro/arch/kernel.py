"""The fast replay kernel: run-compressed contexts + array-backed caches.

``simulate(..., engine="fast")`` swaps the per-reference replay loop of
:class:`~repro.arch.processor.Processor` for this kernel while keeping the
scheduling, coherence and classification semantics *identical* — the
differential suite in ``tests/oracle/`` pins the two engines bit-for-bit
against each other and against the reference interpreter.

Why it is exact (the full argument is in ``docs/PERFORMANCE.md``):

* within one scheduling quantum only the owning processor acts, so no
  remote invalidation can land mid-quantum — a block confirmed resident
  stays resident for the rest of the quantum;
* a repeated same-block *hit* mutates no classification state: the
  direct-mapped cache only bumps its hit counter, and a set-associative
  cache's MRU move is idempotent once the block is at MRU;
* at most one write per run segment needs a real directory upgrade — the
  first one.  After it (or after a write fetch), the writer is the sole
  sharer and the last writer, so every later ``write_hit`` in the segment
  returns 0 invalidations and changes nothing.

So the kernel replays each run segment as: one slow-stepped reference
(which may miss, exactly like the classic loop), one optional directory
upgrade at the segment's first write, and one O(1) arithmetic step for
the remaining hits.  Runs are split at quantum edges so coherence
invalidations between quanta are observed at exactly the same points as
the classic engine.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.arch.cache import SetAssociativeCache
from repro.arch.config import ArchConfig
from repro.arch.directory import Directory
from repro.arch.processor import Processor
from repro.arch.stats import CacheStats, MissKind, ProcessorStats
from repro.trace.runs import compress_trace
from repro.trace.stream import ThreadTrace, TraceSet

__all__ = ["ArrayDirectMappedCache", "FastContext", "FastProcessor",
           "make_fast_cache", "max_block_of"]

#: Departure-record codes for the array-backed classifier.
_NONE, _EVICTED, _INVALIDATED = 0, 1, 2

#: Module-level bindings of the miss kinds for the inlined classifier.
_COMPULSORY = MissKind.COMPULSORY
_INTRA = MissKind.INTRA_THREAD_CONFLICT
_INTER = MissKind.INTER_THREAD_CONFLICT
_INVALIDATION = MissKind.INVALIDATION


def max_block_of(trace_set: TraceSet, block_bits: int) -> int:
    """Largest block number any thread references (sizes the per-block
    classification arrays).  Memoized per trace alongside the compressed
    run structure, so repeated simulate calls pay dict lookups only.
    Streaming traces answer from their O(1) ``max_addr`` metadata — no
    chunk pass."""
    top = 0
    key = ("max_block", block_bits)
    for trace in trace_set:
        if trace.num_refs:
            if trace.streaming:
                got = trace.max_block(block_bits)
                if got > top:
                    top = got
                continue
            cache = trace._replay_cache
            if cache is None:
                cache = trace._replay_cache = {}
            got = cache.get(key)
            if got is None:
                got = cache[key] = int(trace.addrs.max()) >> block_bits
            if got > top:
                top = got
    return top


class ArrayDirectMappedCache:
    """Array-backed direct-mapped cache, interface-compatible with
    :class:`~repro.arch.cache.DirectMappedCache`.

    The tag store is a flat ``int64`` array indexed by set; the
    classification state (first-touch flags plus the one departure record
    each block can have) is flat arrays indexed by block number — the
    workloads' word-granular address spaces are small, so O(num_blocks)
    arrays beat hashing on every miss.  The arrays are plain Python
    lists, not ndarrays: the hot loop indexes them elementwise, where
    list access is severalfold faster than numpy scalar access, and
    ``[-1] * n`` construction beats ``np.full(n, -1).tolist()`` (no
    per-element object creation) — which matters for §4.3's
    "effectively infinite" cache configurations.
    """

    def __init__(self, config: ArchConfig, max_block: int) -> None:
        if config.associativity != 1:
            raise ValueError("ArrayDirectMappedCache requires associativity 1")
        self.num_sets = config.num_sets
        self._mask = self.num_sets - 1
        self._tags = [-1] * self.num_sets
        # numpy mirror of the tag store for the kernel's vectorized
        # whole-window hit scan; mutated only where ``_tags`` is (miss
        # install, eviction, invalidation), so the two never diverge.
        self._tags_np = np.full(self.num_sets, -1, dtype=np.int64)
        size = max_block + 1
        self._seen = [False] * size
        self._departure = [_NONE] * size
        self._actor = [0] * size
        self.stats = CacheStats()

    def contains(self, block: int) -> bool:
        """Whether the block is currently resident."""
        return self._tags[block & self._mask] == block

    def access(
        self, block: int, thread_id: int
    ) -> tuple[MissKind | None, int | None, int | None]:
        """One reference; same contract as ``DirectMappedCache.access``."""
        index = block & self._mask
        tags = self._tags
        if tags[index] == block:
            self.stats.hits += 1
            return None, None, None

        invalidator: int | None = None
        if not self._seen[block]:
            kind = MissKind.COMPULSORY
            self._seen[block] = True
        elif self._departure[block] == _INVALIDATED:
            invalidator = self._actor[block]
            self._departure[block] = _NONE
            kind = MissKind.INVALIDATION
        else:
            evictor = (
                self._actor[block]
                if self._departure[block] == _EVICTED
                else thread_id
            )
            self._departure[block] = _NONE
            kind = (
                MissKind.INTRA_THREAD_CONFLICT
                if evictor == thread_id
                else MissKind.INTER_THREAD_CONFLICT
            )
        self.stats.record_miss(kind)

        evicted = tags[index]
        if evicted != -1:
            self._departure[evicted] = _EVICTED
            self._actor[evicted] = thread_id
        tags[index] = block
        self._tags_np[index] = block
        return kind, (evicted if evicted != -1 else None), invalidator

    def invalidate(self, block: int, by_processor: int) -> bool:
        """Coherence invalidation; True if the block was resident."""
        index = block & self._mask
        if self._tags[index] != block:
            return False
        self._tags[index] = -1
        self._tags_np[index] = -1
        self._departure[block] = _INVALIDATED
        self._actor[block] = by_processor
        return True

    def invalidator_of(self, block: int) -> int | None:
        """Processor whose write invalidated ``block``, if any."""
        if self._departure[block] == _INVALIDATED:
            return self._actor[block]
        return None

    def resident_blocks(self) -> set[int]:
        """All blocks currently resident (for invariant checks)."""
        return {b for b in self._tags if b != -1}


def make_fast_cache(config: ArchConfig, max_block: int):
    """The fast engine's cache: array-backed when direct-mapped, the
    standard LRU cache otherwise (the kernel's run loop works with both)."""
    if config.associativity == 1:
        return ArrayDirectMappedCache(config, max_block)
    return SetAssociativeCache(config)


class FastContext:
    """One hardware context over a run-compressed trace.

    Exposes the same replay-cursor surface as
    :class:`~repro.arch.processor.HardwareContext` (``pos``, ``blocks``,
    ``ready_time``, ``done``) so the oracle's invariant checker audits
    both engines identically.

    Like the classic context, the replay arrays cover one chunk
    ``[base, climit)`` at a time — run structure included, computed
    chunk-locally (runs split at chunk edges, which is exact; see
    ``docs/STREAMING.md``).  A materialized trace is a single chunk, so
    its layout and hot-loop arithmetic are unchanged.  ``hlen`` is the
    resident span's length, the scan heuristic's denominator (for a
    materialized trace it equals ``length``).
    """

    __slots__ = ("thread_id", "gaps", "blocks", "writes", "run_end",
                 "next_write", "prefix_gaps", "charge", "blocks_np",
                 "block_idx", "length", "num_runs", "hlen", "pos",
                 "ready_time", "done", "base", "climit", "_chunks")

    def __init__(self, trace: ThreadTrace, block_bits: int,
                 hit_cycles: int, set_mask: int) -> None:
        if trace.streaming:
            self.thread_id = trace.thread_id
            self.length = trace.num_refs
            self._chunks = trace.replay_chunks(block_bits, hit_cycles,
                                               set_mask)
            self.gaps = self.blocks = self.writes = ()
            self.run_end = self.next_write = self.prefix_gaps = ()
            self.charge = ()
            self.blocks_np = self.block_idx = np.empty(0, dtype=np.int64)
            self.num_runs = 0
            self.hlen = 1
            self.base = 0
            self.climit = 0
            self.pos = 0
            self.ready_time = 0
            self.done = self.length == 0
            return
        # The immutable replay data is memoized on the trace as one flat
        # tuple: repeated simulate calls over the same traces (experiment
        # grids, benchmarks) pay a single dict lookup plus slot stores,
        # which matters for apps with a hundred-plus short threads.
        memo = trace._replay_cache
        if memo is None:
            memo = trace._replay_cache = {}
        key = ("ctx", block_bits, hit_cycles, set_mask)
        data = memo.get(key)
        if data is None:
            compressed = compress_trace(trace, block_bits)
            data = memo[key] = (
                compressed.thread_id, compressed.gaps, compressed.blocks,
                compressed.writes, compressed.run_end,
                compressed.next_write, compressed.prefix_gaps,
                compressed.charge_prefix(hit_cycles), compressed.blocks_np,
                compressed.block_index(set_mask), compressed.num_refs,
                compressed.num_runs,
            )
        (self.thread_id, self.gaps, self.blocks, self.writes, self.run_end,
         self.next_write, self.prefix_gaps, self.charge, self.blocks_np,
         self.block_idx, self.length, self.num_runs) = data
        self._chunks = None
        self.hlen = self.length
        self.base = 0
        self.climit = self.length
        self.pos = 0
        self.ready_time = 0
        self.done = self.length == 0

    def _advance_chunk(self) -> None:
        """Swap the next chunk's compressed columns in (streaming only)."""
        start, compressed, charge, block_idx = next(self._chunks)
        self.base = start
        self.climit = start + compressed.num_refs
        self.gaps = compressed.gaps
        self.blocks = compressed.blocks
        self.writes = compressed.writes
        self.run_end = compressed.run_end
        self.next_write = compressed.next_write
        self.prefix_gaps = compressed.prefix_gaps
        self.charge = charge
        self.blocks_np = compressed.blocks_np
        self.block_idx = block_idx
        self.num_runs = compressed.num_runs
        self.hlen = compressed.num_refs

    def __repr__(self) -> str:
        return (
            f"FastContext(thread={self.thread_id}, pos={self.pos}/"
            f"{self.length}, ready={self.ready_time}, done={self.done})"
        )


class FastProcessor(Processor):
    """A :class:`Processor` whose replay loop steps block runs, not
    references.  Scheduling (``advance``/``_schedule_next``) is inherited
    unchanged — only ``_run`` differs."""

    def __init__(
        self,
        pid: int,
        config: ArchConfig,
        cache,
        directory: Directory,
        traces: list[ThreadTrace],
    ) -> None:
        if len(traces) > config.contexts_per_processor:
            raise ValueError(
                f"processor {pid} was assigned {len(traces)} threads but has "
                f"only {config.contexts_per_processor} hardware contexts"
            )
        self.pid = pid
        self.config = config
        self.cache = cache
        self.directory = directory
        set_mask = config.num_sets - 1
        self.contexts = [
            FastContext(t, config.block_bits, config.hit_cycles, set_mask)
            for t in traces
        ]
        self.stats = ProcessorStats()
        self.time = 0
        self.current = 0
        self.finished = all(c.done for c in self.contexts)
        if self.finished:
            self.stats.completion_time = 0
        # Optional SimProbe; same single-test gating as the classic engine
        # (``_pay_switch`` is inherited and reads it too).
        self._probe = None
        # Tier-latency bindings (see Processor.__init__): the per-source
        # lookup row and per-home-group memory row are precomputed tables,
        # so a tiered miss costs one list index; on the flat machine both
        # are None and every charge site takes the constant path.
        if config.tiered:
            topo = config.topology
            p = config.num_processors
            self._lat_row = topo.latency_rows(p)[pid]
            self._mem_lat = topo.memory_latency_row(pid, p)
            self._topo_groups = topo.groups
        else:
            self._lat_row = None
            self._mem_lat = None
            self._topo_groups = 1
        # Direct-mapped caches get the hit test inlined into the run loop;
        # set-associative ones go through cache.access (the MRU move is
        # stateful even on a hit).
        if isinstance(cache, ArrayDirectMappedCache):
            self._run = self._run_array  # type: ignore[method-assign]
            # Loop-invariant bindings for _run_array, unpacked once per
            # window instead of re-resolved attribute by attribute.  All
            # are stable references: the lists/dicts are mutated in place,
            # never reassigned.
            self._hot = (
                cache._tags, cache._mask, cache._tags_np, cache._seen,
                cache._departure, cache._actor, cache.stats.misses,
                directory.write_hit, directory._sharers.get,
                directory._last_writer.get, directory.evict,
                directory.fetch, directory.pairwise,
                config.flat_miss_latency, config.write_upgrade_stalls,
                pid, {pid}, self._lat_row, self._mem_lat,
                self._topo_groups, directory,
            )
        # Cumulative refs/windows served by _run_array: picks between the
        # vectorized whole-window hit scan (wins on long hit windows) and
        # the per-run Python loop (wins when misses cut windows short).
        # Purely a strategy choice — both paths replay identically.
        self._scan_refs = 0
        self._scan_windows = 0
        # Live (not-done) context slots in ascending order, so scheduling
        # never re-scans completed contexts (see _schedule_next).
        self._alive = [i for i, c in enumerate(self.contexts) if not c.done]

    # ------------------------------------------------------------------

    def _run_array(self, context: FastContext, quantum_refs: int) -> bool:
        """Replay block runs with the direct-mapped hit test inlined.

        Bit-for-bit equivalent to ``Processor._run`` (see the module
        docstring for the argument); returns True when the context
        stalled on a miss or a sequentially-consistent upgrade.

        A read-only run costs one tag compare and one prefix-sum span
        charge — no function calls.  ``next_write[pos]`` locates the one
        write per segment that needs a real directory upgrade (including
        a write at the run's first reference), so writes never cost a
        per-reference test.  Busy cycles and hit counts are recovered in
        O(1) at the end: every cycle charged in this loop is busy time
        (idle and switch costs are added by the scheduler, outside), and
        every consumed reference short of the one possible miss is a hit.

        When this processor's windows have averaged long (hit-rich
        workloads), the per-run loop is replaced by one vectorized scan
        of the whole window against the numpy tag mirror: residency
        cannot change mid-window before the first miss (only this
        processor acts, and its own hits and upgrades never touch its
        tag store), so the scan's first mismatch IS the classic loop's
        first miss.  The choice is a pure strategy switch; both paths
        produce identical results.
        """
        # ``sharers_get``/``last_writer_get`` feed the upgrade no-op
        # pre-test: when this processor is the last writer and the sole
        # sharer, write_hit provably changes nothing (it would re-store
        # the same last_writer and send 0 invalidations), so the kernel
        # skips the call outright.
        (tags, mask, tags_np, seen, departure, actor, miss_counts,
         write_hit, sharers_get, last_writer_get, dir_evict, dir_fetch,
         pairwise, memory_latency, upgrade_stalls, pid, pid_set,
         lat_row, mem_lat, topo_groups, directory) = self._hot
        tid = context.thread_id
        time = self.time
        start_time = time
        start_pos = context.pos
        pos = start_pos
        limit = min(pos + quantum_refs, context.length)
        stalled = False
        missed = 0

        # The quantum [pos, limit) is consumed chunk by chunk within this
        # one call: a chunk edge swaps arrays and continues, it is never
        # a scheduling event, so the quantum interleaving (and every
        # coherence outcome) matches the whole-column replay exactly.  A
        # materialized context is a single chunk — one outer iteration,
        # today's code path verbatim.  Indices below are chunk-local
        # (``i = pos - base``); block numbers stay global.
        while pos < limit:
            if pos >= context.climit:
                context._advance_chunk()
            base = context.base
            blocks = context.blocks
            writes = context.writes
            run_end = context.run_end
            next_write = context.next_write
            charge = context.charge
            i = pos - base
            iend = min(limit, context.climit) - base

            # Expected run iterations this window ≈ (average window length
            # so far) × (this span's runs per reference).  The ~2.7 µs scan
            # beats the ~0.25 µs-per-run Python loop past a dozen runs.
            if (self._scan_refs * context.num_runs
                    > 12 * self._scan_windows * context.hlen):
                # Vectorized window: one scan finds the first miss (or
                # none), then the hits are charged span-wise with one
                # directory upgrade per write-containing run segment.
                neq = (tags_np[context.block_idx[i:iend]]
                       != context.blocks_np[i:iend])
                k = int(neq.argmax())
                miss_at = (i + k) if neq[k] else iend
                if miss_at > i:
                    if not upgrade_stalls:
                        # Write-buffered machine (the paper's baseline): no
                        # hit can stall, so the whole span charges in one
                        # step and the walk below only performs each
                        # segment's one real directory upgrade.
                        w = next_write[i]
                        while w < miss_at:
                            wb = blocks[w]
                            if last_writer_get(wb) != pid or sharers_get(wb) != pid_set:
                                write_hit(wb, pid)
                            seg = run_end[w]
                            if seg >= miss_at:
                                break
                            w = next_write[seg]
                        time += charge[miss_at] - charge[i]
                        i = miss_at
                    else:
                        w = next_write[i]
                        while w < miss_at:
                            # Charge through this segment's first write: the
                            # one upgrade that can generate traffic or stall.
                            time += charge[w + 1] - charge[i]
                            i = w + 1
                            wb = blocks[w]
                            if last_writer_get(wb) != pid or sharers_get(wb) != pid_set:
                                if write_hit(wb, pid):
                                    context.ready_time = time + (
                                        memory_latency if lat_row is None
                                        else directory.last_upgrade_latency)
                                    stalled = True
                                    break
                            seg = run_end[w]
                            if seg >= miss_at:
                                break
                            w = next_write[seg]
                        if not stalled and i < miss_at:
                            time += charge[miss_at] - charge[i]
                            i = miss_at
                if not stalled and i < iend:
                    # Miss at the scan's first mismatch: classify (inlined
                    # ArrayDirectMappedCache.access — the hit test already
                    # ran), then the coherence transaction plus a full
                    # memory latency.
                    time += charge[i + 1] - charge[i]
                    block = blocks[i]
                    is_write = writes[i]
                    invalidator = None
                    if not seen[block]:
                        kind = _COMPULSORY
                        seen[block] = True
                    elif departure[block] == _INVALIDATED:
                        invalidator = actor[block]
                        departure[block] = _NONE
                        kind = _INVALIDATION
                    else:
                        evictor = (actor[block]
                                   if departure[block] == _EVICTED else tid)
                        departure[block] = _NONE
                        kind = _INTRA if evictor == tid else _INTER
                    miss_counts[kind] += 1
                    if self._probe is not None:
                        self._probe.misses[kind] += 1
                    index = block & mask
                    evicted = tags[index]
                    if evicted != -1:
                        departure[evicted] = _EVICTED
                        actor[evicted] = tid
                    tags[index] = block
                    tags_np[index] = block
                    i += 1
                    missed = 1
                    if evicted != -1:
                        dir_evict(evicted, pid)
                    source = dir_fetch(block, pid, is_write)
                    if kind is _INVALIDATION and invalidator is not None:
                        pairwise[pid, invalidator] += 1
                    elif kind is _COMPULSORY and source is not None:
                        pairwise[pid, source] += 1
                    if lat_row is None:
                        context.ready_time = time + memory_latency
                    elif source is not None:
                        context.ready_time = time + lat_row[source]
                    else:
                        context.ready_time = (
                            time + mem_lat[block % topo_groups])
                    stalled = True
            else:
                while i < iend:
                    block = blocks[i]
                    if tags[block & mask] == block:
                        # The whole remaining run is guaranteed hits up to
                        # the quantum edge: no remote action can intervene
                        # mid-quantum.
                        stop = run_end[i]
                        if stop > iend:
                            stop = iend
                        w = next_write[i]
                        if w < stop and upgrade_stalls:
                            # Charge through the segment's first write: the
                            # one upgrade that can generate traffic and
                            # stall.
                            time += charge[w + 1] - charge[i]
                            i = w + 1
                            if last_writer_get(block) != pid or sharers_get(block) != pid_set:
                                if write_hit(block, pid):
                                    context.ready_time = time + (
                                        memory_latency if lat_row is None
                                        else directory.last_upgrade_latency)
                                    stalled = True
                                    break
                            if i < stop:
                                # Later writes in the segment already own
                                # the block exclusively: directory no-ops.
                                time += charge[stop] - charge[i]
                                i = stop
                        else:
                            # Write-buffered machine: the segment's one real
                            # upgrade (if any) cannot stall, so the whole
                            # run charges in a single span.
                            if w < stop and (last_writer_get(block) != pid
                                             or sharers_get(block) != pid_set):
                                write_hit(block, pid)
                            time += charge[stop] - charge[i]
                            i = stop
                    else:
                        # Miss: classify (inlined ArrayDirectMappedCache
                        # .access — the hit test already ran), then the
                        # coherence transaction plus a full memory latency
                        # (the reference's cost is charged first, exactly
                        # like the classic loop).
                        time += charge[i + 1] - charge[i]
                        is_write = writes[i]
                        invalidator = None
                        if not seen[block]:
                            kind = _COMPULSORY
                            seen[block] = True
                        elif departure[block] == _INVALIDATED:
                            invalidator = actor[block]
                            departure[block] = _NONE
                            kind = _INVALIDATION
                        else:
                            evictor = (actor[block]
                                       if departure[block] == _EVICTED else tid)
                            departure[block] = _NONE
                            kind = _INTRA if evictor == tid else _INTER
                        miss_counts[kind] += 1
                        if self._probe is not None:
                            self._probe.misses[kind] += 1
                        index = block & mask
                        evicted = tags[index]
                        if evicted != -1:
                            departure[evicted] = _EVICTED
                            actor[evicted] = tid
                        tags[index] = block
                        tags_np[index] = block
                        i += 1
                        missed = 1
                        if evicted != -1:
                            dir_evict(evicted, pid)
                        source = dir_fetch(block, pid, is_write)
                        if kind is _INVALIDATION and invalidator is not None:
                            pairwise[pid, invalidator] += 1
                        elif kind is _COMPULSORY and source is not None:
                            pairwise[pid, source] += 1
                        if lat_row is None:
                            context.ready_time = time + memory_latency
                        elif source is not None:
                            context.ready_time = time + lat_row[source]
                        else:
                            context.ready_time = (
                                time + mem_lat[block % topo_groups])
                        stalled = True
                        break

            pos = base + i
            if stalled:
                break

        self._scan_refs += pos - start_pos
        self._scan_windows += 1
        context.pos = pos
        # A context that stalled on its final reference is not done yet:
        # it completes when that access returns (same rule as the classic
        # engine).
        # The ``done`` guard matters: ``advance`` can run the initial
        # current slot even when its (empty) context was done at
        # construction and therefore never entered ``_alive``.
        if pos >= context.length and not stalled and not context.done:
            context.done = True
            self._alive.remove(self.current)
        self.time = time
        self.stats.busy += time - start_time
        self.cache.stats.hits += pos - start_pos - missed
        return stalled

    def _run(self, context: FastContext, quantum_refs: int) -> bool:
        """Replay block runs until a miss, completion, or quantum expiry.

        Generic variant used for set-associative caches, where even a hit
        must go through ``cache.access`` for the LRU bookkeeping.  Same
        bit-for-bit contract as :meth:`_run_array`.
        """
        config = self.config
        cache = self.cache
        cache_access = cache.access
        cache_stats = cache.stats
        directory = self.directory
        write_hit = directory.write_hit
        pid = self.pid
        pairwise = directory.pairwise
        hit_cycles = config.hit_cycles
        memory_latency = config.flat_miss_latency
        lat_row = self._lat_row
        mem_lat = self._mem_lat
        topo_groups = self._topo_groups
        upgrade_stalls = config.write_upgrade_stalls
        tid = context.thread_id
        time = self.time
        busy = 0
        pos = context.pos
        limit = min(pos + quantum_refs, context.length)
        stalled = False

        # Chunk-by-chunk within the quantum, like :meth:`_run_array`:
        # chunk edges swap arrays, never schedule.
        while pos < limit:
            if pos >= context.climit:
                context._advance_chunk()
            base = context.base
            gaps = context.gaps
            blocks = context.blocks
            writes = context.writes
            run_end = context.run_end
            next_write = context.next_write
            prefix = context.prefix_gaps
            i = pos - base
            iend = min(limit, context.climit) - base

            while i < iend:
                # Slow-step the first reference of the (remaining) run: it
                # is the only one that can miss within this quantum.
                cost = gaps[i] + hit_cycles
                time += cost
                busy += cost
                block = blocks[i]
                is_write = writes[i]
                kind, evicted, invalidator = cache_access(block, tid)
                i += 1
                if kind is not None:
                    # Miss: coherence transaction plus a full memory
                    # latency.
                    if self._probe is not None:
                        self._probe.misses[kind] += 1
                    if evicted is not None:
                        directory.evict(evicted, pid)
                    source = directory.fetch(block, pid, is_write)
                    if kind is MissKind.INVALIDATION and invalidator is not None:
                        pairwise[pid, invalidator] += 1
                    elif kind is MissKind.COMPULSORY and source is not None:
                        pairwise[pid, source] += 1
                    if lat_row is None:
                        context.ready_time = time + memory_latency
                    elif source is not None:
                        context.ready_time = time + lat_row[source]
                    else:
                        context.ready_time = (
                            time + mem_lat[block % topo_groups])
                    stalled = True
                    break
                owned = False
                if is_write:
                    sent = write_hit(block, pid)
                    owned = True
                    if sent and upgrade_stalls:
                        context.ready_time = time + (
                            memory_latency if lat_row is None
                            else directory.last_upgrade_latency)
                        stalled = True
                        break
                # Bulk-replay the rest of the run (to the quantum edge):
                # all guaranteed hits — no remote action can intervene
                # mid-quantum.
                seg_end = run_end[i - 1]
                if seg_end > iend:
                    seg_end = iend
                if i < seg_end:
                    if not owned:
                        w = next_write[i]
                        if w < seg_end:
                            # Step through the segment's first write: the
                            # one upgrade that can generate traffic (or
                            # stall).
                            span = w + 1 - i
                            delta = (prefix[w + 1] - prefix[i]
                                     + span * hit_cycles)
                            time += delta
                            busy += delta
                            cache_stats.hits += span
                            i = w + 1
                            sent = write_hit(block, pid)
                            if sent and upgrade_stalls:
                                context.ready_time = time + (
                                    memory_latency if lat_row is None
                                    else directory.last_upgrade_latency)
                                stalled = True
                                break
                    if i < seg_end:
                        # Pure hits: any remaining writes already own the
                        # block exclusively, so they are directory no-ops.
                        span = seg_end - i
                        delta = prefix[seg_end] - prefix[i] + span * hit_cycles
                        time += delta
                        busy += delta
                        cache_stats.hits += span
                        i = seg_end

            pos = base + i
            if stalled:
                break

        context.pos = pos
        # A context that stalled on its final reference is not done yet:
        # it completes when that access returns (same rule as the classic
        # engine).
        # The ``done`` guard matters: ``advance`` can run the initial
        # current slot even when its (empty) context was done at
        # construction and therefore never entered ``_alive``.
        if pos >= context.length and not stalled and not context.done:
            context.done = True
            self._alive.remove(self.current)
        self.time = time
        self.stats.busy += busy
        return stalled

    def _schedule_next(self) -> int | None:
        """Round-robin pick over live contexts only.

        Identical policy to :meth:`Processor._schedule_next` — completed
        contexts are exactly the ones the base scan would skip, and
        ``_alive`` preserves ascending slot order, so walking it
        cyclically from the first slot past ``current`` visits the
        surviving candidates in the base loop's order (with ``current``
        itself last).  Avoids O(total contexts) rescans per switch on
        processors whose threads mostly finished — the classic engine
        keeps the straightforward scan.
        """
        alive = self._alive
        if not alive:
            self.finished = True
            self.stats.completion_time = self.time
            return None
        contexts = self.contexts
        cur = self.current
        time = self.time
        m = len(alive)
        # First live slot strictly after ``current`` (cyclic); negative
        # indexing wraps the tail of the ring to the front.
        start = bisect_right(alive, cur) - m
        for k in range(m):
            index = alive[start + k]
            if contexts[index].ready_time <= time:
                if index != cur:
                    self._pay_switch()
                self.current = index
                return self.time

        # Everyone is stalled: idle until the earliest miss completes,
        # breaking ties in round-robin distance from ``current``.
        n = len(contexts)
        ready_time, index = min(
            ((contexts[i].ready_time, i) for i in alive),
            key=lambda item: (item[0], (item[1] - cur) % n),
        )
        self.stats.idle += ready_time - time
        self.time = ready_time
        if index != cur:
            self._pay_switch()
        self.current = index
        return self.time
