"""Markov-chain model of multithreaded processor efficiency (paper §5).

"Saavedra-Barrera et al. developed a Markov chain model for multithreaded
processor efficiency that uses the number of contexts, the network
latency, context switch times and remote reference rate ...  The study
shows that few contexts cannot effectively hide very long memory
latencies."

This is a per-cycle chain in that spirit.  State = number of contexts
stalled on memory (0..n).  Each executed cycle the running context misses
with probability ``1 / run_length`` (geometric run lengths); each stalled
context's access completes with probability ``1 / latency`` (the standard
geometric-service approximation of the fixed latency, which is what makes
the process Markovian).  The stationary distribution gives the fraction
of cycles with at least one runnable context; the 6-cycle switch drain is
applied as the same per-miss overhead factor the closed-form model of
:mod:`repro.arch.models` uses.

In the saturated regime the chain matches the closed-form model of
:mod:`repro.arch.models`; in the unsaturated regime it sits somewhat below
it — the memoryless service loses the perfect self-scheduling that
deterministic latencies provide, a classic deterministic-vs-exponential
difference.  See ``tests/arch/test_markov.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.util.validate import check_positive

__all__ = ["MarkovEfficiencyModel"]


@dataclass(frozen=True)
class MarkovEfficiencyModel:
    """Stationary-state efficiency of an n-context processor.

    Attributes:
        contexts: Hardware contexts (n >= 1).
        run_length: Mean useful cycles between misses (geometric).
        latency: Memory latency in cycles (geometric-service approximated).
        switch_cost: Context-switch cost in cycles.
    """

    contexts: int
    run_length: float
    latency: float
    switch_cost: float = 0.0

    def __post_init__(self) -> None:
        check_positive("contexts", self.contexts)
        check_positive("run_length", self.run_length)
        check_positive("latency", self.latency)
        check_positive("switch_cost", self.switch_cost, allow_zero=True)

    @cached_property
    def transition_matrix(self) -> np.ndarray:
        """Per-cycle transitions over the number of stalled contexts.

        ``T[k, k']`` is the probability of moving from k to k' stalled
        contexts in one cycle.
        """
        n = self.contexts
        p_miss = min(1.0, 1.0 / self.run_length)
        p_done = min(1.0, 1.0 / self.latency)
        size = n + 1
        matrix = np.zeros((size, size))
        from math import comb

        for k in range(size):
            # Completions among the k outstanding accesses: Binomial(k, q).
            completion_pmf = np.array([
                comb(k, c) * p_done**c * (1 - p_done) ** (k - c)
                for c in range(k + 1)
            ])
            for c in range(k + 1):
                remaining = k - c
                if k < n:
                    # A context is running: it may miss.
                    matrix[k, remaining + 1] += completion_pmf[c] * p_miss
                    matrix[k, remaining] += completion_pmf[c] * (1 - p_miss)
                else:
                    # All stalled: nothing new can miss.
                    matrix[k, remaining] += completion_pmf[c]
        return matrix

    @cached_property
    def stationary_distribution(self) -> np.ndarray:
        """Stationary probabilities over the stalled-context count."""
        matrix = self.transition_matrix
        size = matrix.shape[0]
        # Solve pi = pi T with sum(pi) = 1 as a linear system.
        system = np.vstack([(matrix.T - np.eye(size)), np.ones(size)])
        rhs = np.zeros(size + 1)
        rhs[-1] = 1.0
        solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        solution = np.clip(solution, 0.0, None)
        return solution / solution.sum()

    @property
    def busy_probability(self) -> float:
        """Fraction of cycles with at least one runnable context."""
        return float(self.stationary_distribution[: self.contexts].sum())

    @property
    def utilization(self) -> float:
        """Predicted useful-cycle fraction, switch overhead included.

        A single-context processor never context-switches (it stalls in
        place), so the per-miss drain applies only for n > 1.
        """
        if self.contexts == 1:
            return self.busy_probability
        switch_factor = self.run_length / (self.run_length + self.switch_cost)
        return self.busy_probability * switch_factor
