"""Whole-system trace-driven simulation.

:func:`simulate` replays an application's traces on the multithreaded
multiprocessor under a placement map and returns the paper's metrics:
execution time (the slowest processor's completion time), per-processor
cycle accounting, the four-way miss decomposition per cache, interconnect
traffic and the pairwise coherence matrix §4.2 measures.

Global timing uses min-time scheduling: the processor with the smallest
local clock advances by one bounded quantum (a run of hits ending in a
miss, completion, or the quantum cap), so inter-processor skew stays within
one quantum while each processor's own timing is exact.  Coherence actions
apply at the issuing processor's current time — the standard trace-driven
approximation (DESIGN.md, "Key design decisions").
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.arch.cache import make_cache
from repro.arch.config import ArchConfig
from repro.arch.directory import Directory
from repro.arch.processor import Processor
from repro.arch.stats import SimulationResult
from repro.placement.base import PlacementMap
from repro.trace.stream import TraceSet
from repro.util.validate import check_positive

__all__ = ["simulate", "ENGINES"]


#: Replay engines :func:`simulate` can dispatch to.
ENGINES = ("classic", "fast")


def simulate(
    trace_set: TraceSet,
    placement: PlacementMap,
    config: ArchConfig,
    *,
    quantum_refs: int = 256,
    check_invariants: bool = False,
    engine: str = "classic",
    probe=None,
) -> SimulationResult:
    """Simulate one application under one placement and configuration.

    Args:
        trace_set: The application's per-thread traces — a materialized
            :class:`~repro.trace.stream.TraceSet` or a chunked
            :class:`~repro.trace.streaming.StreamingTraceSet`.  Both
            engines replay the two bit-for-bit identically (the chunk
            cursor seam; see ``docs/STREAMING.md``); streaming keeps
            only O(chunk × threads) reference data resident.
        placement: Thread-to-processor map; must target exactly
            ``config.num_processors`` processors and place every thread.
        config: Architectural parameters (Table 3).
        quantum_refs: Scheduling quantum in references; bounds the timing
            skew between processors.  The default keeps skew far below the
            phase lengths of any workload in the suite.
        check_invariants: Audit the run with the
            :class:`~repro.oracle.invariants.InvariantChecker`
            (conservation laws after every quantum and at completion; see
            ``docs/VALIDATION.md``).  Off by default — the default path
            pays no checking cost.
        engine: ``"classic"`` replays one reference at a time;
            ``"fast"`` uses the run-length-compressed kernel in
            :mod:`repro.arch.kernel`.  The two are bit-for-bit
            equivalent on every metric (enforced by ``tests/oracle/``);
            see ``docs/PERFORMANCE.md``.
        probe: Optional :class:`~repro.obs.probes.SimProbe` counting
            quanta, miss classes, directory upgrades and context
            switches as the run replays.  Probes observe, never steer:
            results are bit-for-bit identical with or without one, and
            the counts are engine-invariant.  Off (None) by default —
            the disabled path pays one pointer test per event, never
            per reference.

    Returns:
        The run's :class:`~repro.arch.stats.SimulationResult`.

    Raises:
        ValueError: On any placement/configuration mismatch (wrong thread
            count, wrong processor count, more threads on a processor than
            hardware contexts) or an unknown ``engine``.
        repro.oracle.invariants.InvariantViolation: When
            ``check_invariants`` is set and a conservation law fails.
    """
    check_positive("quantum_refs", quantum_refs)
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}: expected one of {ENGINES}"
        )
    if check_invariants and getattr(trace_set, "streaming", False):
        raise ValueError(
            "check_invariants requires a materialized trace set: the "
            "oracle's invariant checker audits whole-column replay "
            "state; materialize() the streaming set (or rerun without "
            "streaming) to audit it"
        )
    if placement.num_threads != trace_set.num_threads:
        raise ValueError(
            f"placement covers {placement.num_threads} threads, trace set has "
            f"{trace_set.num_threads}"
        )
    if placement.num_processors != config.num_processors:
        raise ValueError(
            f"placement targets {placement.num_processors} processors, "
            f"config has {config.num_processors}"
        )

    p = config.num_processors
    pairwise = np.zeros((p, p), dtype=np.int64)
    if engine == "fast":
        from repro.arch.kernel import (
            FastProcessor,
            make_fast_cache,
            max_block_of,
        )

        max_block = max_block_of(trace_set, config.block_bits)
        caches = [make_fast_cache(config, max_block) for _ in range(p)]
        processor_cls = FastProcessor
    else:
        caches = [make_cache(config) for _ in range(p)]
        processor_cls = Processor
    lat_rows = config.topology.latency_rows(p) if config.tiered else None
    directory = Directory(caches, pairwise, lat_rows)
    processors = [
        processor_cls(
            pid,
            config,
            caches[pid],
            directory,
            [trace_set[tid] for tid in placement.threads_on(pid)],
        )
        for pid in range(p)
    ]

    if probe is not None:
        # Arm the event hooks: each site tests one attribute against
        # None, so an unprobed run never leaves the fast path.
        probe.cells += 1
        directory._probe = probe
        for proc in processors:
            proc._probe = probe

    checker = None
    if check_invariants:
        # Imported lazily: the oracle depends on arch types, not vice versa.
        from repro.oracle.invariants import InvariantChecker

        checker = InvariantChecker(processors, caches, directory)

    # Min-time scheduling over processors with runnable work.
    heap: list[tuple[int, int]] = [
        (proc.time, proc.pid) for proc in processors if not proc.finished
    ]
    heapq.heapify(heap)
    while heap:
        _, pid = heapq.heappop(heap)
        next_time = processors[pid].advance(quantum_refs)
        if probe is not None:
            probe.quanta += 1
        if checker is not None:
            checker.after_quantum(pid)
        if next_time is not None:
            heapq.heappush(heap, (next_time, pid))

    result = SimulationResult(
        execution_time=max(proc.stats.completion_time for proc in processors),
        processors=[proc.stats for proc in processors],
        caches=[cache.stats for cache in caches],
        interconnect=directory.stats,
        pairwise_coherence=pairwise,
        total_refs=trace_set.total_refs,
    )
    if checker is not None:
        checker.at_completion(result)
    return result
