"""Distributed, directory-based cache coherence (paper §3.2).

"Cache coherency is maintained with a distributed, directory-based cache
coherency protocol" — a full-map write-invalidate directory: every block
has a sharer set; a write anywhere invalidates every other cached copy.

The directory is the *global* coherence authority; the per-processor caches
only learn about invalidations when the directory tells them.  Timing is
folded into the simulator's fixed memory latency (the paper's multipath
network is contention-free with one 50-cycle latency for all remote
operations), so the directory tracks state and traffic, not time.
"""

from __future__ import annotations

import numpy as np

from repro.arch.stats import InterconnectStats

__all__ = ["Directory"]


class Directory:
    """Full-map write-invalidate directory over all processor caches.

    The owning simulator passes in the cache list so invalidations can be
    applied to remote caches immediately (at the issuing processor's
    current time — the trace-driven approximation described in DESIGN.md).
    """

    def __init__(
        self, caches: list, pairwise: np.ndarray,
        lat_rows: list[list[int]] | None = None,
    ) -> None:
        self._caches = caches
        self._sharers: dict[int, set[int]] = {}
        self._last_writer: dict[int, int] = {}
        self.stats = InterconnectStats()
        self.pairwise = pairwise
        #: Per-processor-pair tier latencies (``lat_rows[writer][holder]``)
        #: on a tiered :class:`~repro.topo.model.Topology`; None on the
        #: flat machine, where the invalidation walk pays no tracking.
        self._lat_rows = lat_rows
        #: Max tier latency over the holders the last invalidation round
        #: actually reached — what a stalling upgrade waits out on a
        #: tiered machine.  Engines read it only right after a
        #: ``write_hit`` that sent invalidations, which always refreshes
        #: it (``sent > 0`` implies at least one invalidated holder).
        self.last_upgrade_latency = 0
        #: Optional :class:`~repro.obs.probes.SimProbe` (armed by the
        #: simulator); tested once per invalidation-sending upgrade only.
        self._probe = None

    def sharers_of(self, block: int) -> set[int]:
        """Current sharer set (copy) — for tests and invariant checks."""
        return set(self._sharers.get(block, ()))

    def fetch(self, block: int, processor: int, is_write: bool) -> int | None:
        """A processor misses on ``block``; update global state.

        Counts the memory fetch, invalidates remote copies when the fetch
        is for a write, and returns the processor the data was sourced from
        (the last writer if it still holds the block, else the lowest
        sharer), or None when only memory holds it.
        """
        self.stats.memory_fetches += 1
        sharers = self._sharers.setdefault(block, set())
        source: int | None = None
        if sharers:
            last_writer = self._last_writer.get(block)
            source = last_writer if last_writer in sharers else min(sharers)
        if is_write:
            self._invalidate_others(block, processor, sharers)
            sharers.clear()
            self._last_writer[block] = processor
        sharers.add(processor)
        return source

    def write_hit(self, block: int, processor: int) -> int:
        """A processor writes a block it holds; invalidate other copies.

        This is the upgrade path.  By default it generates invalidations
        (interconnect traffic) but no stall — the simulator models an
        Alewife-style write buffer, so context switches remain purely
        miss-driven as in the paper; the processor can optionally stall on
        it (see ``ArchConfig.write_upgrade_stalls``).

        Returns the number of invalidations sent.
        """
        sharers = self._sharers.setdefault(block, set())
        sent = 0
        if len(sharers) > 1 or (sharers and processor not in sharers):
            before = self.stats.invalidations_sent
            self._invalidate_others(block, processor, sharers)
            sent = self.stats.invalidations_sent - before
            sharers.clear()
            sharers.add(processor)
        self._last_writer[block] = processor
        # Probed only when invalidations went out: the fast kernel may
        # legally skip provable no-op upgrades, so counting sent>0 events
        # keeps the probe engine-invariant.
        if sent and self._probe is not None:
            self._probe.upgrades += 1
        return sent

    def evict(self, block: int, processor: int) -> None:
        """A cache silently dropped its copy.

        Entries whose sharer set empties are pruned outright: long sweeps
        over large address spaces would otherwise grow the directory by
        one empty set per distinct block ever cached.  ``sharers_of`` and
        ``check_invariants`` treat a missing entry and an empty set
        identically, so pruning is unobservable.
        """
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(processor)
            if not sharers:
                del self._sharers[block]

    def _invalidate_others(self, block: int, writer: int, sharers: set[int]) -> None:
        row = self._lat_rows[writer] if self._lat_rows is not None else None
        worst = 0
        for holder in sharers:
            if holder == writer:
                continue
            if self._caches[holder].invalidate(block, by_processor=writer):
                self.stats.invalidations_sent += 1
                self.pairwise[writer, holder] += 1
                if row is not None and row[holder] > worst:
                    worst = row[holder]
        if row is not None:
            self.last_upgrade_latency = worst

    def check_invariants(self) -> None:
        """Single-writer/multi-reader sanity check (used by tests).

        Every block's sharer set must exactly match the caches that hold
        it resident.
        """
        for block, sharers in self._sharers.items():
            resident = {
                pid for pid, cache in enumerate(self._caches)
                if cache.contains(block)
            }
            if resident != sharers:
                raise AssertionError(
                    f"directory out of sync for block {block}: "
                    f"directory={sorted(sharers)}, resident={sorted(resident)}"
                )
