"""The multithreaded multiprocessor simulator (paper §3.2, Table 3).

Trace-driven: multi-context processors with round-robin switching (6-cycle
switch on every cache miss), per-processor direct-mapped (or, as the §4.1
extension, set-associative) data caches with the paper's four-way miss
decomposition, a full-map write-invalidate directory, and a contention-free
multipath interconnect with a single 50-cycle remote latency.

Typical use::

    from repro.arch import ArchConfig, simulate
    result = simulate(traces, placement, ArchConfig(4, 4, cache_words=1024))
    print(result.execution_time, result.miss_breakdown())
"""

from repro.arch.cache import DirectMappedCache, SetAssociativeCache, make_cache
from repro.arch.config import ArchConfig
from repro.arch.contention import ContentionResult, simulate_with_contention
from repro.arch.delta import (
    GuardedDirectory,
    SpeculationDiverged,
    SpeculationOutcome,
    speculate_from_neighbor,
)
from repro.arch.directory import Directory
from repro.arch.kernel import (
    ArrayDirectMappedCache,
    FastProcessor,
    make_fast_cache,
)
from repro.arch.processor import HardwareContext, Processor
from repro.arch.simulator import ENGINES, simulate
from repro.arch.markov import MarkovEfficiencyModel
from repro.arch.models import (
    EfficiencyModel,
    measured_run_length,
    predicted_utilization,
)
from repro.arch.thrashing import ThrashingDiagnosis, detect_thrashing
from repro.arch.stats import (
    CacheStats,
    InterconnectStats,
    MissKind,
    ProcessorStats,
    SimulationResult,
)

__all__ = [
    "ArchConfig",
    "simulate",
    "ENGINES",
    "FastProcessor",
    "ArrayDirectMappedCache",
    "make_fast_cache",
    "MissKind",
    "CacheStats",
    "ProcessorStats",
    "InterconnectStats",
    "SimulationResult",
    "DirectMappedCache",
    "SetAssociativeCache",
    "make_cache",
    "Directory",
    "GuardedDirectory",
    "SpeculationDiverged",
    "SpeculationOutcome",
    "speculate_from_neighbor",
    "ContentionResult",
    "simulate_with_contention",
    "ThrashingDiagnosis",
    "detect_thrashing",
    "EfficiencyModel",
    "MarkovEfficiencyModel",
    "predicted_utilization",
    "measured_run_length",
    "Processor",
    "HardwareContext",
]
