"""Architectural configuration (the paper's Table 3).

Table 3 lists the simulator's inputs: number of processors, hardware
contexts per processor, context-switch policy (round-robin) and cost
(6 cycles, the pipeline drain), cache size and geometry (direct-mapped,
1-cycle hits), and the interconnect latency (50 cycles, "approximating the
average memory latency of a moderately-loaded Alewife-style multiprocessor"
with no explicit contention modelling).

Addresses are word-granular throughout the reproduction; sizes here are in
words (4 bytes each at the paper's scale).  ``INFINITE_CACHE_WORDS``
reproduces §4.3's "effectively infinite" 8 MB cache: large enough that no
application suffers a single capacity or conflict miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topo.model import Topology
from repro.util.validate import check_positive, check_power_of_two

__all__ = ["ArchConfig"]


@dataclass(frozen=True)
class ArchConfig:
    """Complete architectural description consumed by the simulator.

    Attributes:
        num_processors: Processors in the machine (Table 3: 2-16).
        contexts_per_processor: Hardware contexts per processor; each holds
            one thread for the whole run (Table 3: 1-64).
        cache_words: Per-processor data-cache capacity in words.
        block_words: Cache block size in words (power of two).  The
            reproduction's default is 4 words — chosen with the scaled
            workloads so that footprints span enough blocks for conflict
            behaviour to be statistical rather than a lottery over a
            handful of very hot blocks.
        associativity: Ways per set; 1 is the paper's direct-mapped cache,
            larger values are the §4.1 thrashing remedy ("Set associative
            caching would address this problem").
        hit_cycles: Cache hit time (Table 3: 1 cycle).
        memory_latency_cycles: Remote access latency (Table 3: 50 cycles).
        context_switch_cycles: Pipeline-drain cost of a switch (6 cycles).
        write_upgrade_stalls: If True, a write hit that must invalidate
            remote copies stalls the context for the memory latency (a
            sequentially-consistent machine without a write buffer); the
            paper's baseline is False — writes retire into an
            Alewife-style write buffer and only *misses* trigger context
            switches.  Exposed as an ablation of that assumption.
        topology: Optional :class:`~repro.topo.model.Topology` replacing
            the single ``memory_latency_cycles`` with per-tier latencies
            (group-local vs cross-group; see ``docs/TOPOLOGY.md``).
            ``None`` — the default, and what every pre-topology config
            pickles/compares as — is the paper's flat machine: every
            remote operation costs ``memory_latency_cycles``.  A set
            topology *overrides* ``memory_latency_cycles`` for every
            miss and upgrade stall.
    """

    num_processors: int
    contexts_per_processor: int
    cache_words: int = 1024
    block_words: int = 4
    associativity: int = 1
    hit_cycles: int = 1
    memory_latency_cycles: int = 50
    context_switch_cycles: int = 6
    write_upgrade_stalls: bool = False
    topology: Topology | None = None

    #: §4.3's "effectively infinite" cache: 8 MB = 2M words.
    INFINITE_CACHE_WORDS: int = 1 << 21

    def __post_init__(self) -> None:
        check_positive("num_processors", self.num_processors)
        check_positive("contexts_per_processor", self.contexts_per_processor)
        check_positive("cache_words", self.cache_words)
        check_power_of_two("block_words", self.block_words)
        check_positive("associativity", self.associativity)
        check_positive("hit_cycles", self.hit_cycles)
        check_positive("memory_latency_cycles", self.memory_latency_cycles)
        check_positive("context_switch_cycles", self.context_switch_cycles, allow_zero=True)
        if self.cache_words % (self.block_words * self.associativity) != 0:
            raise ValueError(
                f"cache_words={self.cache_words} is not a whole number of "
                f"{self.associativity}-way sets of {self.block_words}-word blocks"
            )
        check_power_of_two("num_sets", self.num_sets)
        if self.topology is not None:
            self.topology.validate_for(self.num_processors)

    @property
    def num_sets(self) -> int:
        """Cache sets; a power of two so indexing is a mask."""
        return self.cache_words // (self.block_words * self.associativity)

    @property
    def block_bits(self) -> int:
        """Shift that converts a word address to a block number."""
        return self.block_words.bit_length() - 1

    @property
    def max_threads(self) -> int:
        """Threads the machine can hold (one per hardware context)."""
        return self.num_processors * self.contexts_per_processor

    @property
    def tiered(self) -> bool:
        """True when miss latency varies by processor-pair tier.

        A ``None`` topology and a uniform one both take the engines'
        constant-latency fast path — the flat machine stays bit-identical
        to the pre-topology baseline by construction.
        """
        return self.topology is not None and not self.topology.uniform

    @property
    def flat_miss_latency(self) -> int:
        """The single miss latency when the machine is not tiered: the
        topology's uniform latency if one is set, else Table 3's value."""
        if self.topology is not None:
            return self.topology.local_latency
        return self.memory_latency_cycles

    def with_cache_words(self, cache_words: int) -> "ArchConfig":
        """Copy of this configuration with a different cache size."""
        return ArchConfig(
            num_processors=self.num_processors,
            contexts_per_processor=self.contexts_per_processor,
            cache_words=cache_words,
            block_words=self.block_words,
            associativity=self.associativity,
            hit_cycles=self.hit_cycles,
            memory_latency_cycles=self.memory_latency_cycles,
            context_switch_cycles=self.context_switch_cycles,
            write_upgrade_stalls=self.write_upgrade_stalls,
            topology=self.topology,
        )

    def with_memory_latency(self, memory_latency_cycles: int) -> "ArchConfig":
        """Copy of this configuration with a different remote latency."""
        return ArchConfig(
            num_processors=self.num_processors,
            contexts_per_processor=self.contexts_per_processor,
            cache_words=self.cache_words,
            block_words=self.block_words,
            associativity=self.associativity,
            hit_cycles=self.hit_cycles,
            memory_latency_cycles=memory_latency_cycles,
            context_switch_cycles=self.context_switch_cycles,
            write_upgrade_stalls=self.write_upgrade_stalls,
            topology=self.topology,
        )

    def with_topology(self, topology: Topology | None) -> "ArchConfig":
        """Copy of this configuration on a different machine topology."""
        return ArchConfig(
            num_processors=self.num_processors,
            contexts_per_processor=self.contexts_per_processor,
            cache_words=self.cache_words,
            block_words=self.block_words,
            associativity=self.associativity,
            hit_cycles=self.hit_cycles,
            memory_latency_cycles=self.memory_latency_cycles,
            context_switch_cycles=self.context_switch_cycles,
            write_upgrade_stalls=self.write_upgrade_stalls,
            topology=topology,
        )

    def describe(self) -> list[tuple[str, str]]:
        """Human-readable (parameter, value) rows — the Table 3 content.

        The topology row appears only when a topology is explicitly set,
        so baseline (``topology=None``) reports render byte-identically
        to the pre-topology suite.
        """
        rows = self._describe_flat()
        if self.topology is not None:
            topo = self.topology
            rows.append((
                "Topology",
                f"{topo.groups} group(s), local {topo.local_latency} / "
                f"remote {topo.remote_latency} cycles",
            ))
        return rows

    def _describe_flat(self) -> list[tuple[str, str]]:
        return [
            ("Number of processors", str(self.num_processors)),
            ("Hardware contexts per processor", str(self.contexts_per_processor)),
            ("Context switch policy", "round-robin"),
            ("Context switch cost", f"{self.context_switch_cycles} cycles"),
            ("Cache size", f"{self.cache_words} words"),
            ("Cache organization",
             "direct-mapped" if self.associativity == 1
             else f"{self.associativity}-way set associative"),
            ("Cache block size", f"{self.block_words} words"),
            ("Cache hit time", f"{self.hit_cycles} cycle"),
            ("Memory latency", f"{self.memory_latency_cycles} cycles"),
            ("Coherence", "distributed directory, write-invalidate"),
            ("Network", "multipath, contention-free"),
        ]
