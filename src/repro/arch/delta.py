"""Guarded delta simulation: speculate a cell from a completed neighbor.

Most grid cells replay the *same trace set* under the *same architecture*
with only the placement changed.  When a neighbor cell (same trace/config,
different placement) has already completed, parts of the new cell's answer
are already known, and this module recovers them under guards that make
speculation **exact or absent** — a speculated result is bit-for-bit the
result a full replay would produce, or speculation aborts and the caller
falls back to full fast-engine replay.  (The pattern of SNIPPETS' trace
speculation: record a fast path, guard it, abort to the slow path.)

Two tiers:

**Tier 1 — identical placement, exact clone.**  Several placement
algorithms frequently emit the *same* assignment (e.g. thread-balanced
variants agreeing at small thread counts).  Same trace set + same config +
same placement determines the simulation completely, so the neighbor's
result is this cell's result; it is deep-copied, never recomputed.  (Note
relabeled-but-permuted placements are NOT exact under coherence coupling —
the min-time heap breaks time ties by processor id, and tie order is
observable through the directory; see ``tests/oracle`` metamorphic notes —
so only *identical* assignments qualify.)

**Tier 2 — isolated-cluster delta replay.**  Call processor ``q``
*coherence-isolated* when every block its threads touch is touched by no
thread outside them — a placement-invariant property of the traces.  If
``q``'s thread set is unchanged between the neighbor placement and ours
and ``q`` is isolated, its per-processor evolution is independent of the
rest of the machine: no invalidation, fetch sourcing or pairwise event
ever crosses the boundary, and the min-time heap's ``(time, pid)`` order
among the remaining processors is unchanged by removing it.  The delta
replay therefore re-simulates only the changed (or non-isolated)
processors and copies the isolated ones' statistics from the neighbor.
The composition is exact:

* per-processor cycle and cache counters — replayed processors from the
  delta run, isolated ones copied from the neighbor;
* ``pairwise`` — the delta run's matrix alone (every pairwise bump
  involves two *distinct* processors sharing a block, so isolated
  processors contribute zero; the neighbor's rows/columns are checked);
* ``memory_fetches`` — the directory counts exactly one fetch per miss,
  so the total is the delta run's fetches plus the copied caches' misses;
* ``invalidations_sent`` — the delta run's alone (isolated processors
  neither send nor receive);
* ``execution_time`` — the max completion time over all processors.

**Guards.**  Static: thread-set equality and isolation are recomputed
from the traces per cell, and the neighbor result must pass conservation
(copied caches' accesses equal their threads' references; its pairwise
rows/columns for copied processors are zero).  Dynamic: the delta run
uses a :class:`GuardedDirectory` that aborts if any replayed reference
reaches a block belonging to a copied processor, and each quantum
verifies the predicted invariant that copied caches stay untouched (the
``diverge:speculate`` chaos fault injects a failure here, forcing the
abort path the differential tier must prove invisible).  Post: the
composed result must conserve references and fetches.  Any guard failure
raises :class:`SpeculationDiverged`, reported as an abort — never a
wrong number.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import faults
from repro.arch.config import ArchConfig
from repro.arch.directory import Directory
from repro.arch.stats import (
    CacheStats,
    InterconnectStats,
    MissKind,
    ProcessorStats,
    SimulationResult,
)
from repro.placement.base import PlacementMap
from repro.trace.stream import ThreadTrace, TraceSet

__all__ = [
    "GuardedDirectory",
    "SpeculationDiverged",
    "SpeculationOutcome",
    "clone_result",
    "speculate_from_neighbor",
    "stash_speculation",
    "take_speculation",
    "thread_blocks",
]


class SpeculationDiverged(Exception):
    """A speculation guard failed; the caller must fall back to full replay."""


# ----------------------------------------------------------------------
# Worker -> coordinator hand-off (mirrors repro.obs.probes' channel)
# ----------------------------------------------------------------------

#: Speculation events the current job's runner left for the engine's
#: invoke harness to ship to the coordinator's journal.  Bounded: on the
#: sequential (engine-less) path nothing drains the channel, and dropping
#: old observability events beats growing without limit.
_PENDING_EVENTS: deque = deque(maxlen=4096)


def stash_speculation(event: dict) -> None:
    """Deposit one cell's speculation outcome (worker side)."""
    _PENDING_EVENTS.append(event)


def take_speculation() -> list[dict]:
    """Pop every stashed speculation event (engine invoke harness)."""
    events = list(_PENDING_EVENTS)
    _PENDING_EVENTS.clear()
    return events


@dataclass
class SpeculationOutcome:
    """What one speculation attempt produced.

    ``result`` is None exactly when ``mode == "abort"``; ``detail`` names
    the composition (``copied=3/4``) or the abort reason for the journal.
    """

    result: SimulationResult | None
    mode: str  # "clone" | "delta" | "abort"
    detail: str

    @property
    def hit(self) -> bool:
        return self.result is not None


def thread_blocks(trace: ThreadTrace, block_bits: int) -> frozenset:
    """The set of cache blocks one thread ever references.

    Placement-invariant; memoized on the trace's replay cache under a
    tuple key (the run-compression memos use plain ``block_bits`` ints,
    so the namespaces cannot collide).  Streaming traces reduce chunk by
    chunk through their own memoized :meth:`block_set`.
    """
    if trace.streaming:
        return trace.block_set(block_bits)
    cache = trace._replay_cache
    if cache is None:
        cache = trace._replay_cache = {}
    key = ("block_set", block_bits)
    got = cache.get(key)
    if got is None:
        got = cache[key] = frozenset(
            np.unique(trace.addrs >> block_bits).tolist()
        )
    return got


def clone_result(result: SimulationResult) -> SimulationResult:
    """A deep, independent copy of a simulation result.

    Speculation must never hand out shared mutable state: the neighbor's
    result may be memoized by the suite, and downstream reporting mutates
    nothing today — but "today" is not a contract.
    """
    processors = [
        ProcessorStats(busy=s.busy, switching=s.switching, idle=s.idle,
                       completion_time=s.completion_time)
        for s in result.processors
    ]
    caches = []
    for stats in result.caches:
        copy = CacheStats(hits=stats.hits)
        for kind in MissKind:
            copy.misses[kind] = stats.misses[kind]
        caches.append(copy)
    return SimulationResult(
        execution_time=result.execution_time,
        processors=processors,
        caches=caches,
        interconnect=InterconnectStats(
            memory_fetches=result.interconnect.memory_fetches,
            invalidations_sent=result.interconnect.invalidations_sent,
        ),
        pairwise_coherence=np.array(result.pairwise_coherence,
                                    dtype=np.int64, copy=True),
        total_refs=result.total_refs,
    )


class GuardedDirectory(Directory):
    """A directory that aborts speculation on any cross-boundary touch.

    ``forbidden`` is the block footprint of the copied (skipped)
    processors.  Isolation says no replayed thread references those
    blocks; this guard *enforces* it — a reference reaching one proves
    the static analysis wrong (or an injected divergence) and raises
    :class:`SpeculationDiverged` before any state is polluted.  The fast
    kernel calls the directory through bound methods captured at
    processor construction, so these overrides cover every miss, upgrade
    and eviction; raw-dict sharer reads in the kernel are safe because
    the first contact with any block is a compulsory miss through
    :meth:`fetch`.
    """

    def __init__(self, caches: list, pairwise: np.ndarray,
                 forbidden: frozenset,
                 lat_rows: list[list[int]] | None = None) -> None:
        super().__init__(caches, pairwise, lat_rows)
        self._forbidden = forbidden

    def fetch(self, block: int, processor: int, is_write: bool) -> int | None:
        if block in self._forbidden:
            raise SpeculationDiverged(
                f"replayed processor {processor} fetched copied block {block}"
            )
        return super().fetch(block, processor, is_write)

    def write_hit(self, block: int, processor: int) -> int:
        if block in self._forbidden:
            raise SpeculationDiverged(
                f"replayed processor {processor} upgraded copied block {block}"
            )
        return super().write_hit(block, processor)

    def evict(self, block: int, processor: int) -> None:
        if block in self._forbidden:
            raise SpeculationDiverged(
                f"replayed processor {processor} evicted copied block {block}"
            )
        super().evict(block, processor)


def _pid_footprints(
    trace_set: TraceSet, placement: PlacementMap, block_bits: int,
) -> tuple[list[frozenset], dict]:
    """Per-processor block footprints and the block -> sole-pid map.

    ``block_pid[b]`` is the only processor whose threads touch ``b``, or
    -1 when threads of several processors do.
    """
    p = placement.num_processors
    footprints: list[set] = [set() for _ in range(p)]
    block_pid: dict[int, int] = {}
    for tid in range(placement.num_threads):
        pid = int(placement.assignment[tid])
        blocks = thread_blocks(trace_set[tid], block_bits)
        footprints[pid].update(blocks)
        for block in blocks:
            prev = block_pid.get(block)
            if prev is None:
                block_pid[block] = pid
            elif prev != pid:
                block_pid[block] = -1
    return [frozenset(f) for f in footprints], block_pid


def _partition(
    trace_set: TraceSet,
    placement: PlacementMap,
    neighbor_placement: PlacementMap,
    block_bits: int,
) -> tuple[list[int], list[int], frozenset, int]:
    """Split processors into (replayed, copied) plus the forbidden blocks.

    A processor is copyable when its thread set is unchanged from the
    neighbor placement AND it is coherence-isolated under the new one
    (both placements put exactly those threads on it, so isolation —
    a thread-set property — holds in both runs).

    Also returns the cut-edge count — the number of blocks touched by
    threads of more than one processor.  When no processor is copyable
    this quantifies *why* (how entangled the placement's sharing graph
    is), and the rejection journals it.
    """
    footprints, block_pid = _pid_footprints(trace_set, placement, block_bits)
    cut_blocks = sum(1 for owner in block_pid.values() if owner == -1)
    copied: list[int] = []
    replayed: list[int] = []
    for pid in range(placement.num_processors):
        threads = placement.threads_on(pid)
        if (threads == neighbor_placement.threads_on(pid)
                and all(block_pid[b] == pid for b in footprints[pid])):
            copied.append(pid)
        else:
            replayed.append(pid)
    forbidden = frozenset().union(*(footprints[q] for q in copied)) \
        if copied else frozenset()
    return replayed, copied, forbidden, cut_blocks


def _check_neighbor(
    trace_set: TraceSet,
    placement: PlacementMap,
    neighbor_result: SimulationResult,
    copied: list[int],
) -> None:
    """Static guard over the neighbor result before anything is copied."""
    pairwise = np.asarray(neighbor_result.pairwise_coherence)
    for q in copied:
        expected = sum(trace_set[t].num_refs for t in placement.threads_on(q))
        stats = neighbor_result.caches[q]
        if stats.total_accesses != expected:
            raise SpeculationDiverged(
                f"neighbor cache {q} accesses {stats.total_accesses} != "
                f"its threads' {expected} references"
            )
        if pairwise[q, :].any() or pairwise[:, q].any():
            raise SpeculationDiverged(
                f"neighbor pairwise row/column {q} not zero for an "
                "isolated processor"
            )


def _delta_replay(
    trace_set: TraceSet,
    placement: PlacementMap,
    config: ArchConfig,
    quantum_refs: int,
    replayed: list[int],
    forbidden: frozenset,
    probe,
    context: str | None,
):
    """Replay only ``replayed`` processors under the guarded directory."""
    from repro.arch.kernel import FastProcessor, make_fast_cache, max_block_of

    p = config.num_processors
    pairwise = np.zeros((p, p), dtype=np.int64)
    max_block = max_block_of(trace_set, config.block_bits)
    caches = [make_fast_cache(config, max_block) for _ in range(p)]
    lat_rows = config.topology.latency_rows(p) if config.tiered else None
    directory = GuardedDirectory(caches, pairwise, forbidden, lat_rows)
    replay = set(replayed)
    processors = [
        FastProcessor(
            pid, config, caches[pid], directory,
            [trace_set[tid] for tid in placement.threads_on(pid)]
            if pid in replay else [],
        )
        for pid in range(p)
    ]
    if probe is not None:
        # The delta run is the cell's simulation: count it, and let the
        # probe see exactly the work actually replayed (the saved work is
        # what the spec_* counters account for).
        probe.cells += 1
        directory._probe = probe
        for pid in replay:
            processors[pid]._probe = probe
    copied_caches = [caches[q] for q in range(p) if q not in replay]

    heap: list[tuple[int, int]] = [
        (proc.time, proc.pid) for proc in processors if not proc.finished
    ]
    heapq.heapify(heap)
    while heap:
        _, pid = heapq.heappop(heap)
        next_time = processors[pid].advance(quantum_refs)
        if probe is not None:
            probe.quanta += 1
        # Per-quantum guard: the predicted invariant is that copied
        # processors' caches stay untouched; the chaos ``diverge`` fault
        # fails this check on demand to exercise the abort path.
        if faults.diverge(context):
            raise SpeculationDiverged("injected diverge fault")
        for cache in copied_caches:
            stats = cache.stats
            if stats.hits or any(stats.misses.values()):
                raise SpeculationDiverged(
                    "copied processor's cache was touched during delta replay"
                )
        if next_time is not None:
            heapq.heappush(heap, (next_time, pid))
    return processors, caches, directory, pairwise


def speculate_from_neighbor(
    trace_set: TraceSet,
    placement: PlacementMap,
    config: ArchConfig,
    *,
    neighbor_placement: PlacementMap,
    neighbor_result: SimulationResult,
    quantum_refs: int = 256,
    probe=None,
    context: str | None = None,
) -> SpeculationOutcome:
    """Try to produce this cell's result from a completed neighbor cell.

    The neighbor must be the *same trace set, same config, same quantum*
    under a different placement — the caller guarantees that (the suite
    keys candidates by cell coordinates).  Returns an outcome whose
    ``result`` is bit-for-bit what full replay would produce, or None
    (``mode == "abort"``) when any guard fails; aborting is always safe
    and the caller falls back to full fast-engine replay.
    """
    try:
        if (placement.num_threads != neighbor_placement.num_threads
                or placement.num_processors != neighbor_placement.num_processors
                or neighbor_result.num_processors != config.num_processors
                or neighbor_result.total_refs != trace_set.total_refs):
            raise SpeculationDiverged("neighbor shape mismatch")

        if placement == neighbor_placement:
            # Tier 1: the cell is fully determined; clone, don't simulate.
            if faults.diverge(context):
                raise SpeculationDiverged("injected diverge fault")
            return SpeculationOutcome(
                clone_result(neighbor_result), "clone", "identical placement"
            )

        # Tier 2: copy isolated unchanged processors, replay the rest.
        replayed, copied, forbidden, cut_blocks = _partition(
            trace_set, placement, neighbor_placement, config.block_bits
        )
        if not copied:
            # Journal *why* the partition was empty: the cut-edge count
            # says how entangled the sharing graph is (0 means every
            # processor changed threads; large means sharing spans
            # processors everywhere).
            if probe is not None:
                probe.spec_delta_rejects += 1
            raise SpeculationDiverged(
                "no isolated unchanged processors "
                f"(cut_blocks={cut_blocks})"
            )
        _check_neighbor(trace_set, placement, neighbor_result, copied)
        processors, caches, directory, pairwise = _delta_replay(
            trace_set, placement, config, quantum_refs,
            replayed, forbidden, probe, context,
        )

        proc_stats: list[ProcessorStats] = []
        cache_stats: list[CacheStats] = []
        copied_set = set(copied)
        donor = clone_result(neighbor_result)
        copied_misses = 0
        for pid in range(config.num_processors):
            if pid in copied_set:
                proc_stats.append(donor.processors[pid])
                cache_stats.append(donor.caches[pid])
                copied_misses += donor.caches[pid].total_misses
            else:
                proc_stats.append(processors[pid].stats)
                cache_stats.append(caches[pid].stats)

        composed = SimulationResult(
            execution_time=max(s.completion_time for s in proc_stats),
            processors=proc_stats,
            caches=cache_stats,
            interconnect=InterconnectStats(
                memory_fetches=(directory.stats.memory_fetches
                                + copied_misses),
                invalidations_sent=directory.stats.invalidations_sent,
            ),
            pairwise_coherence=pairwise,
            total_refs=trace_set.total_refs,
        )
        # Post-composition conservation: references and fetches must
        # balance exactly, or the speculation is discarded wholesale.
        accesses = sum(c.total_accesses for c in composed.caches)
        if accesses != composed.total_refs:
            raise SpeculationDiverged(
                f"composed accesses {accesses} != {composed.total_refs} refs"
            )
        misses = sum(c.total_misses for c in composed.caches)
        if composed.interconnect.memory_fetches != misses:
            raise SpeculationDiverged(
                f"composed fetches {composed.interconnect.memory_fetches} "
                f"!= {misses} misses"
            )
        return SpeculationOutcome(
            composed, "delta",
            f"copied={len(copied)}/{config.num_processors}",
        )
    except SpeculationDiverged as exc:
        return SpeculationOutcome(None, "abort", str(exc))
