"""Interconnect contention as a fixed-point extension (ablation).

The paper deliberately does not model network contention: "We assume a
multipath network and do not explicitly model network contention.
Instead, we use a latency value of 50 cycles" (§3.2).  Its introduction
still motivates the placement question with traffic: improved utilization
"could be offset by a rise in interconnect traffic".

This module ablates that modelling choice with the classic
analytic-simulation hybrid: treat the interconnect as a queueing resource
with a per-operation service time, estimate its utilization from a
simulation's measured traffic, inflate the remote latency by the M/M/1
factor 1/(1-rho), and re-simulate until the latency stops moving.  If
sharing-based placement were being short-changed by the contention-free
assumption (its whole purpose is to remove interconnect operations), this
model would reveal it — see ``benchmarks/bench_ablation_contention.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ArchConfig
from repro.arch.simulator import simulate
from repro.arch.stats import SimulationResult
from repro.placement.base import PlacementMap
from repro.trace.stream import TraceSet
from repro.util.validate import check_positive

__all__ = ["ContentionResult", "simulate_with_contention"]

# Utilization is capped below 1 so the M/M/1 inflation stays finite; a
# machine offered more traffic than the interconnect can carry saturates
# at this point rather than diverging.
_MAX_UTILIZATION = 0.95


@dataclass(frozen=True)
class ContentionResult:
    """Outcome of the fixed-point contention simulation.

    Attributes:
        result: The final (converged) simulation.
        effective_latency: The converged remote latency in cycles.
        utilization: The converged interconnect utilization (rho).
        iterations: Fixed-point passes performed.
        converged: Whether successive latencies agreed within one cycle.
    """

    result: SimulationResult
    effective_latency: int
    utilization: float
    iterations: int
    converged: bool


def _interconnect_utilization(
    result: SimulationResult, service_cycles: float
) -> float:
    """Offered interconnect load: operation-cycles per machine cycle."""
    if result.execution_time <= 0:
        return 0.0
    busy = result.interconnect.total_operations * service_cycles
    return min(busy / result.execution_time, _MAX_UTILIZATION)


def simulate_with_contention(
    trace_set: TraceSet,
    placement: PlacementMap,
    config: ArchConfig,
    *,
    service_cycles: float = 2.0,
    max_passes: int = 6,
    quantum_refs: int = 256,
) -> ContentionResult:
    """Simulate with latency inflated to the contention fixed point.

    Args:
        trace_set / placement / config: As for
            :func:`repro.arch.simulator.simulate`; ``config``'s latency is
            the uncontended base.
        service_cycles: Interconnect occupancy per operation (memory fetch
            or invalidation).
        max_passes: Fixed-point iteration budget.
        quantum_refs: Simulator scheduling quantum.

    Returns:
        The converged :class:`ContentionResult`.
    """
    check_positive("service_cycles", service_cycles)
    check_positive("max_passes", max_passes)
    base_latency = config.memory_latency_cycles

    latency = base_latency
    utilization = 0.0
    result = simulate(trace_set, placement, config, quantum_refs=quantum_refs)
    converged = False
    passes = 1
    for passes in range(2, max_passes + 1):
        utilization = _interconnect_utilization(result, service_cycles)
        new_latency = max(1, round(base_latency / (1.0 - utilization)))
        if abs(new_latency - latency) <= 1:
            latency = new_latency
            converged = True
            break
        latency = new_latency
        result = simulate(
            trace_set, placement, config.with_memory_latency(latency),
            quantum_refs=quantum_refs,
        )
    return ContentionResult(
        result=result,
        effective_latency=latency,
        utilization=utilization,
        iterations=passes,
        converged=converged,
    )
