"""Analytical multithreaded-processor models (paper §5, related work).

The paper's related-work section discusses analytical models of
multithreaded processor efficiency: Agarwal's model incorporating contexts,
latency and switch cost, and Saavedra-Barrera et al.'s Markov-chain model
showing "few contexts cannot effectively hide very long memory latencies".

This module implements the standard closed-form model those works share.
With *n* contexts, mean run length between misses *R* (cycles), memory
latency *L* and switch cost *C*, a processor is **saturated** when the
other contexts' work covers an outstanding miss, i.e.
``(n - 1) * (R + C) >= L``:

* saturated:    utilization = R / (R + C)
* unsaturated:  utilization = n * R / (R + L)

(The unsaturated denominator is one full miss period; with too few
contexts the processor idles for the remainder of L no matter how it
switches.)

:func:`predicted_utilization` evaluates the model;
:func:`measured_run_length` extracts R from a simulation so the model and
the simulator can be compared on equal inputs — see
``tests/arch/test_models.py`` for the agreement checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.stats import SimulationResult
from repro.util.validate import check_positive

__all__ = ["EfficiencyModel", "predicted_utilization", "measured_run_length"]


@dataclass(frozen=True)
class EfficiencyModel:
    """Inputs of the closed-form multithreading efficiency model.

    Attributes:
        contexts: Hardware contexts per processor (n).
        run_length: Mean cycles of useful work between misses (R).
        latency: Memory latency in cycles (L).
        switch_cost: Context-switch cost in cycles (C).
    """

    contexts: int
    run_length: float
    latency: float
    switch_cost: float

    def __post_init__(self) -> None:
        check_positive("contexts", self.contexts)
        check_positive("run_length", self.run_length)
        check_positive("latency", self.latency, allow_zero=True)
        check_positive("switch_cost", self.switch_cost, allow_zero=True)

    @property
    def saturated(self) -> bool:
        """True when enough contexts exist to fully hide the latency."""
        return (self.contexts - 1) * (self.run_length + self.switch_cost) >= self.latency

    @property
    def utilization(self) -> float:
        """Predicted fraction of cycles doing useful work."""
        if self.contexts == 1:
            return self.run_length / (self.run_length + self.latency)
        if self.saturated:
            return self.run_length / (self.run_length + self.switch_cost)
        return self.contexts * self.run_length / (self.run_length + self.latency)


def predicted_utilization(
    contexts: int, run_length: float, latency: float, switch_cost: float
) -> float:
    """Convenience wrapper over :class:`EfficiencyModel`."""
    return EfficiencyModel(contexts, run_length, latency, switch_cost).utilization


def measured_run_length(result: SimulationResult) -> float:
    """Mean useful cycles between misses, measured from a simulation.

    R = total busy cycles / total misses: the empirical counterpart of the
    model's run-length parameter.
    """
    busy = sum(p.busy for p in result.processors)
    misses = result.cache_totals.total_misses
    if misses == 0:
        return float(busy)
    return busy / misses
