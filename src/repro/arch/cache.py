"""Per-processor data caches with four-way miss classification.

The paper's cache unit is direct-mapped with a one-cycle hit; §4.1 suggests
set associativity as the fix for the Patch thrashing anomaly, so both
organizations are provided behind one interface.

Classification (§3.2) requires knowing, for every block that ever lived in
the cache, *why it left*:

* never resident before → **compulsory**;
* removed by a coherence invalidation → **invalidation** miss;
* evicted by a mapping conflict → **conflict** miss, *intra*-thread if the
  evicting reference came from the same thread as the missing one and
  *inter*-thread otherwise (the multithreading interference the paper is
  about).

With the §4.3 "infinite" cache no eviction ever happens, so only the first
two kinds remain — exactly the property the infinite-cache experiment
relies on.
"""

from __future__ import annotations

from repro.arch.config import ArchConfig
from repro.arch.stats import CacheStats, MissKind

__all__ = ["DirectMappedCache", "SetAssociativeCache", "make_cache"]


class DirectMappedCache:
    """Direct-mapped cache (the paper's configuration).

    One block per set; the set index is the low bits of the block number.
    """

    def __init__(self, config: ArchConfig) -> None:
        if config.associativity != 1:
            raise ValueError("DirectMappedCache requires associativity 1")
        self.num_sets = config.num_sets
        self._mask = self.num_sets - 1
        self._line_block: list[int] = [-1] * self.num_sets
        self._seen: set[int] = set()
        self._invalidated_by: dict[int, int] = {}
        self._evicted_by: dict[int, int] = {}
        self.stats = CacheStats()

    def contains(self, block: int) -> bool:
        """Whether the block is currently resident."""
        return self._line_block[block & self._mask] == block

    def access(
        self, block: int, thread_id: int
    ) -> tuple[MissKind | None, int | None, int | None]:
        """One reference to ``block`` by ``thread_id``.

        Returns ``(miss_kind, evicted_block, invalidator)``:
        ``(None, None, None)`` on a hit; on a miss, the classified kind,
        the block evicted to make room (``None`` when the line was empty),
        and — for invalidation misses — the processor whose write
        invalidated the block.
        """
        index = block & self._mask
        if self._line_block[index] == block:
            self.stats.record_hit()
            return None, None, None

        # Miss: classify from the block's departure record.
        invalidator: int | None = None
        if block not in self._seen:
            kind = MissKind.COMPULSORY
            self._seen.add(block)
        elif block in self._invalidated_by:
            invalidator = self._invalidated_by.pop(block)
            kind = MissKind.INVALIDATION
        else:
            evictor = self._evicted_by.pop(block, thread_id)
            kind = (
                MissKind.INTRA_THREAD_CONFLICT
                if evictor == thread_id
                else MissKind.INTER_THREAD_CONFLICT
            )
        self.stats.record_miss(kind)

        evicted = self._line_block[index]
        if evicted != -1:
            self._evicted_by[evicted] = thread_id
        self._line_block[index] = block
        return kind, (evicted if evicted != -1 else None), invalidator

    def invalidate(self, block: int, by_processor: int) -> bool:
        """Coherence invalidation; True if the block was resident."""
        index = block & self._mask
        if self._line_block[index] != block:
            return False
        self._line_block[index] = -1
        self._invalidated_by[block] = by_processor
        return True

    def invalidator_of(self, block: int) -> int | None:
        """Processor whose write invalidated ``block``, if any."""
        return self._invalidated_by.get(block)

    def resident_blocks(self) -> set[int]:
        """All blocks currently resident (for invariant checks)."""
        return {b for b in self._line_block if b != -1}


class SetAssociativeCache:
    """LRU set-associative cache (the §4.1 extension)."""

    def __init__(self, config: ArchConfig) -> None:
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self._mask = self.num_sets - 1
        # Per set: list of resident block numbers, MRU first.  (The
        # classifier needs the *evicting* thread, recorded in
        # ``_evicted_by`` at eviction time — no per-line thread slot.)
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._seen: set[int] = set()
        self._invalidated_by: dict[int, int] = {}
        self._evicted_by: dict[int, int] = {}
        self.stats = CacheStats()

    def contains(self, block: int) -> bool:
        """Whether the block is currently resident."""
        return block in self._sets[block & self._mask]

    def access(
        self, block: int, thread_id: int
    ) -> tuple[MissKind | None, int | None, int | None]:
        """One reference; see :meth:`DirectMappedCache.access`."""
        lines = self._sets[block & self._mask]
        for position, resident in enumerate(lines):
            if resident == block:
                # LRU update: move to MRU position.
                lines.insert(0, lines.pop(position))
                self.stats.record_hit()
                return None, None, None

        invalidator: int | None = None
        if block not in self._seen:
            kind = MissKind.COMPULSORY
            self._seen.add(block)
        elif block in self._invalidated_by:
            invalidator = self._invalidated_by.pop(block)
            kind = MissKind.INVALIDATION
        else:
            evictor = self._evicted_by.pop(block, thread_id)
            kind = (
                MissKind.INTRA_THREAD_CONFLICT
                if evictor == thread_id
                else MissKind.INTER_THREAD_CONFLICT
            )
        self.stats.record_miss(kind)

        evicted = None
        if len(lines) >= self.ways:
            evicted = lines.pop()
            self._evicted_by[evicted] = thread_id
        lines.insert(0, block)
        return kind, evicted, invalidator

    def invalidate(self, block: int, by_processor: int) -> bool:
        """Coherence invalidation; True if the block was resident."""
        lines = self._sets[block & self._mask]
        for position, resident in enumerate(lines):
            if resident == block:
                lines.pop(position)
                self._invalidated_by[block] = by_processor
                return True
        return False

    def invalidator_of(self, block: int) -> int | None:
        """Processor whose write invalidated ``block``, if any."""
        return self._invalidated_by.get(block)

    def resident_blocks(self) -> set[int]:
        """All blocks currently resident (for invariant checks)."""
        return {b for lines in self._sets for b in lines}


def make_cache(config: ArchConfig):
    """Cache of the organization the configuration asks for."""
    if config.associativity == 1:
        return DirectMappedCache(config)
    return SetAssociativeCache(config)
