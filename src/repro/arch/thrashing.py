"""Thrashing detection (paper §4.1).

"In a few rare situations, e.g., Patch with sixteen processors and
LOAD-BAL, we observed thrashing when two co-located threads frequently
conflicted for the same cache block ...  In our case the thrashing
processor had an order of magnitude more inter-thread conflict misses than
other processors, and therefore took longer to complete execution.  Set
associative caching would address this problem."

:func:`detect_thrashing` applies exactly that criterion to a
:class:`~repro.arch.stats.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.stats import MissKind, SimulationResult
from repro.util.validate import check_positive

__all__ = ["ThrashingDiagnosis", "detect_thrashing"]


@dataclass(frozen=True)
class ThrashingDiagnosis:
    """One thrashing processor: its conflicts vs its peers'."""

    processor: int
    inter_thread_conflicts: int
    peer_median: float

    @property
    def ratio(self) -> float:
        return self.inter_thread_conflicts / max(self.peer_median, 1.0)

    def __str__(self) -> str:
        return (
            f"processor {self.processor}: {self.inter_thread_conflicts} "
            f"inter-thread conflict misses, {self.ratio:.0f}x the peer median "
            f"({self.peer_median:.0f})"
        )


def detect_thrashing(
    result: SimulationResult, *, factor: float = 10.0, min_conflicts: int = 50
) -> list[ThrashingDiagnosis]:
    """Find processors thrashing on inter-thread cache conflicts.

    A processor is flagged when its inter-thread conflict-miss count is at
    least ``factor`` times the median of the *other* processors' counts
    (the paper's "order of magnitude more") and at least ``min_conflicts``
    in absolute terms (so near-zero medians don't flag noise).

    Returns diagnoses sorted worst-first; an empty list means no thrashing.
    """
    check_positive("factor", factor)
    check_positive("min_conflicts", min_conflicts)
    counts = np.array(
        [c.misses[MissKind.INTER_THREAD_CONFLICT] for c in result.caches],
        dtype=float,
    )
    if counts.size < 2:
        return []
    diagnoses = []
    for pid in range(counts.size):
        peers = np.delete(counts, pid)
        median = float(np.median(peers))
        mine = int(counts[pid])
        if mine >= min_conflicts and mine >= factor * max(median, 1.0):
            diagnoses.append(
                ThrashingDiagnosis(
                    processor=pid,
                    inter_thread_conflicts=mine,
                    peer_median=median,
                )
            )
    diagnoses.sort(key=lambda d: -d.ratio)
    return diagnoses
