"""Simulation statistics.

The statistics mirror what the paper's simulator reports:

* the **processor unit** "maintains statistics on the cycles spent doing
  useful work, context switching and idling" (§3.2) —
  :class:`ProcessorStats`;
* the **cache unit** "maintains separate statistics on the individual cache
  miss components of compulsory, intra-thread conflict, inter-thread
  conflict and invalidation misses" — :class:`CacheStats` keyed by
  :class:`MissKind`;
* the **interconnect** counts the coherence traffic §4.2 measures —
  :class:`InterconnectStats`, including the processor-pair matrix that
  feeds the dynamic COHERENCE-TRAFFIC placement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MissKind", "CacheStats", "ProcessorStats", "InterconnectStats",
           "SimulationResult"]


class MissKind(enum.Enum):
    """The paper's four-way cache-miss decomposition."""

    COMPULSORY = "compulsory"
    INTRA_THREAD_CONFLICT = "intra-thread conflict"
    INTER_THREAD_CONFLICT = "inter-thread conflict"
    INVALIDATION = "invalidation"


@dataclass
class CacheStats:
    """Per-cache access counters with the four-way miss decomposition."""

    hits: int = 0
    misses: dict[MissKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in MissKind}
    )

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_accesses(self) -> int:
        return self.hits + self.total_misses

    @property
    def miss_rate(self) -> float:
        total = self.total_accesses
        return self.total_misses / total if total else 0.0

    def record_hit(self) -> None:
        """Count one cache hit."""
        self.hits += 1

    def record_miss(self, kind: MissKind) -> None:
        """Count one miss of the given kind."""
        self.misses[kind] += 1

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum of two counters (machine-wide aggregation)."""
        merged = CacheStats(hits=self.hits + other.hits)
        for kind in MissKind:
            merged.misses[kind] = self.misses[kind] + other.misses[kind]
        return merged


@dataclass
class ProcessorStats:
    """Cycle accounting for one processor.

    busy: instruction execution and cache-access cycles;
    switching: context-switch (pipeline drain) cycles;
    idle: cycles with every context stalled on memory;
    completion_time: local clock when the last context finished.
    """

    busy: int = 0
    switching: int = 0
    idle: int = 0
    completion_time: int = 0

    @property
    def total(self) -> int:
        return self.busy + self.switching + self.idle

    @property
    def utilization(self) -> float:
        return self.busy / self.total if self.total else 0.0


@dataclass
class InterconnectStats:
    """Traffic counters for the (contention-free) interconnect."""

    memory_fetches: int = 0
    invalidations_sent: int = 0

    @property
    def total_operations(self) -> int:
        return self.memory_fetches + self.invalidations_sent


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes:
        execution_time: Max completion time over processors — the paper's
            figure-of-merit ("the maximum execution time over all the
            processors").
        processors: Per-processor cycle accounting.
        caches: Per-processor cache statistics.
        interconnect: Aggregate interconnect traffic.
        pairwise_coherence: (p, p) matrix; entry (a, b) counts coherence
            events a's accesses caused involving b's cache (invalidations
            sent a->b, invalidation misses a suffered due to b, compulsory
            fetches a sourced from b).
        total_refs: Data references simulated.
    """

    execution_time: int
    processors: list[ProcessorStats]
    caches: list[CacheStats]
    interconnect: InterconnectStats
    pairwise_coherence: np.ndarray
    total_refs: int

    @property
    def num_processors(self) -> int:
        return len(self.processors)

    @property
    def cache_totals(self) -> CacheStats:
        """Suite-wide cache stats (all processor caches merged)."""
        merged = CacheStats()
        for stats in self.caches:
            merged = merged.merged_with(stats)
        return merged

    def miss_breakdown(self) -> dict[MissKind, int]:
        """Machine-wide miss counts by kind."""
        return dict(self.cache_totals.misses)

    @property
    def compulsory_plus_invalidation(self) -> int:
        """The quantity the paper's hypothesis says placement should reduce."""
        totals = self.cache_totals
        return (
            totals.misses[MissKind.COMPULSORY]
            + totals.misses[MissKind.INVALIDATION]
        )

    @property
    def coherence_traffic(self) -> int:
        """§4.2's measured traffic: invalidations, invalidation misses and
        compulsory misses."""
        totals = self.cache_totals
        return (
            self.interconnect.invalidations_sent
            + totals.misses[MissKind.INVALIDATION]
            + totals.misses[MissKind.COMPULSORY]
        )

    @property
    def coherence_traffic_fraction(self) -> float:
        """Coherence + compulsory traffic as a fraction of total references."""
        return self.coherence_traffic / self.total_refs if self.total_refs else 0.0

    def describe(self) -> str:
        """Per-processor cycle and miss accounting as an aligned table."""
        from repro.util.tables import format_table

        rows = []
        for pid, (proc, cache) in enumerate(zip(self.processors, self.caches)):
            rows.append([
                pid,
                proc.busy,
                proc.switching,
                proc.idle,
                proc.completion_time,
                round(proc.utilization, 3),
                cache.hits,
                cache.misses[MissKind.COMPULSORY],
                cache.misses[MissKind.INTRA_THREAD_CONFLICT],
                cache.misses[MissKind.INTER_THREAD_CONFLICT],
                cache.misses[MissKind.INVALIDATION],
            ])
        return format_table(
            ["proc", "busy", "switch", "idle", "done at", "util",
             "hits", "comp", "intra", "inter", "inval"],
            rows,
            title=f"Simulation: {self.execution_time} cycles, "
                  f"{self.total_refs} references",
        )
