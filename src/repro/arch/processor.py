"""The multithreaded processor model (paper §3.2).

"Each processor models multiple hardware contexts and a round-robin
context switch policy.  A context switch takes 6 cycles, the time to drain
the execution pipeline.  A context switch is initiated by a cache miss
from the currently executing thread."

One hardware context holds one thread for the whole run.  A context
executes instructions (one cycle each) and issues data references; a cache
hit costs the hit time, a miss stalls the context for the memory latency
and hands the pipeline to the next *ready* context in round-robin order.
If no context is ready the processor idles (charged to the idle counter)
until the earliest outstanding miss completes.
"""

from __future__ import annotations

from repro.arch.config import ArchConfig
from repro.arch.directory import Directory
from repro.arch.stats import MissKind, ProcessorStats
from repro.trace.stream import ThreadTrace

__all__ = ["HardwareContext", "Processor"]


class HardwareContext:
    """One hardware context: a thread's trace plus its replay cursor.

    The replay arrays cover one *chunk* at a time: ``gaps``/``blocks``/
    ``writes`` hold the references ``[base, climit)`` of the thread, and
    the run loop indexes them chunk-locally.  A materialized trace is a
    single chunk (``base == 0``, ``climit == length``), which is exactly
    today's whole-column layout; a streaming trace swaps chunks in
    through :meth:`_advance_chunk` as the cursor crosses ``climit``, so
    only O(chunk) references are ever resident per context.
    """

    __slots__ = ("thread_id", "gaps", "blocks", "writes", "length", "pos",
                 "ready_time", "done", "base", "climit", "_chunks",
                 "_block_bits")

    def __init__(self, trace: ThreadTrace, block_bits: int) -> None:
        self.thread_id = trace.thread_id
        self.length = trace.num_refs
        self.pos = 0
        self.ready_time = 0
        self.done = self.length == 0
        self._block_bits = block_bits
        if trace.streaming:
            self._chunks = trace.chunks()
            self.gaps = self.blocks = self.writes = ()
            self.base = 0
            self.climit = 0
            return
        # Plain Python lists: the replay loop indexes elementwise, where
        # lists are several times faster than numpy scalar access.
        self._chunks = None
        self.gaps = trace.gaps.tolist()
        self.blocks = (trace.addrs >> block_bits).tolist()
        self.writes = trace.writes.tolist()
        self.base = 0
        self.climit = self.length

    def _advance_chunk(self) -> None:
        """Swap the next chunk's columns in (streaming traces only)."""
        chunk = next(self._chunks)
        self.base = chunk.start
        self.climit = chunk.start + chunk.num_refs
        self.gaps = chunk.gaps.tolist()
        self.blocks = (chunk.addrs >> self._block_bits).tolist()
        self.writes = chunk.writes.tolist()

    def __repr__(self) -> str:
        return (
            f"HardwareContext(thread={self.thread_id}, pos={self.pos}/"
            f"{self.length}, ready={self.ready_time}, done={self.done})"
        )


class Processor:
    """One multithreaded processor: contexts + cache + cycle accounting."""

    def __init__(
        self,
        pid: int,
        config: ArchConfig,
        cache,
        directory: Directory,
        traces: list[ThreadTrace],
    ) -> None:
        if len(traces) > config.contexts_per_processor:
            raise ValueError(
                f"processor {pid} was assigned {len(traces)} threads but has "
                f"only {config.contexts_per_processor} hardware contexts"
            )
        self.pid = pid
        self.config = config
        self.cache = cache
        self.directory = directory
        self.contexts = [HardwareContext(t, config.block_bits) for t in traces]
        # Tier-latency bindings; all None/trivial on the flat machine so
        # the constant-latency path below is exactly the pre-topology one.
        if config.tiered:
            topo = config.topology
            p = config.num_processors
            self._lat_row = topo.latency_rows(p)[pid]
            self._mem_lat = topo.memory_latency_row(pid, p)
            self._topo_groups = topo.groups
        else:
            self._lat_row = None
            self._mem_lat = None
            self._topo_groups = 1
        self.stats = ProcessorStats()
        self.time = 0
        self.current = 0
        self.finished = all(c.done for c in self.contexts)
        if self.finished:
            self.stats.completion_time = 0
        #: Optional :class:`~repro.obs.probes.SimProbe`; every hook is
        #: gated by one ``is not None`` test so the default path stays hot.
        self._probe = None

    # ------------------------------------------------------------------

    def advance(self, quantum_refs: int) -> int | None:
        """Run one scheduling quantum; return the next service time.

        Executes the current (ready) context until it misses, finishes, or
        exhausts the quantum; then applies the round-robin switch policy.
        Returns the processor's new local time, or None when every context
        has completed (the completion time is recorded in the stats).
        """
        if self.finished:
            return None
        context = self.contexts[self.current]
        stalled = self._run(context, quantum_refs)
        if not stalled and not context.done:
            # Quantum expired mid-run: same context continues next turn.
            return self.time
        return self._schedule_next()

    # ------------------------------------------------------------------

    def _run(self, context: HardwareContext, quantum_refs: int) -> bool:
        """Replay references until a miss, completion, or quantum expiry.

        Returns True when the context stalled on a miss.

        The loop is chunk-local: the quantum ``[pos, limit)`` is consumed
        chunk by chunk within this one call, so a chunk edge is never a
        scheduling event — the quantum interleaving (and therefore every
        coherence outcome) is identical to the whole-column replay.  A
        materialized context is one chunk and takes the outer loop once.
        """
        config = self.config
        cache_access = self.cache.access
        directory = self.directory
        pid = self.pid
        pairwise = directory.pairwise
        hit_cycles = config.hit_cycles
        memory_latency = config.flat_miss_latency
        lat_row = self._lat_row
        mem_lat = self._mem_lat
        groups = self._topo_groups
        upgrade_stalls = config.write_upgrade_stalls
        tid = context.thread_id
        time = self.time
        busy = 0
        pos = context.pos
        limit = min(pos + quantum_refs, context.length)
        stalled = False

        while pos < limit:
            if pos >= context.climit:
                context._advance_chunk()
            base = context.base
            gaps, blocks, writes = context.gaps, context.blocks, context.writes
            i = pos - base
            iend = min(limit, context.climit) - base

            while i < iend:
                cost = gaps[i] + hit_cycles
                time += cost
                busy += cost
                block = blocks[i]
                is_write = writes[i]
                kind, evicted, invalidator = cache_access(block, tid)
                i += 1
                if kind is None:
                    if is_write:
                        sent = directory.write_hit(block, pid)
                        if sent and upgrade_stalls:
                            # Sequentially-consistent mode: the upgrade is a
                            # remote transaction the context must wait out —
                            # on a tiered machine, out to the farthest copy
                            # it invalidated.
                            context.ready_time = time + (
                                memory_latency if lat_row is None
                                else directory.last_upgrade_latency)
                            stalled = True
                            break
                    continue
                # Miss: coherence transaction plus the memory latency of
                # the tier the data is sourced from (one constant on the
                # flat machine).
                if self._probe is not None:
                    self._probe.misses[kind] += 1
                if evicted is not None:
                    directory.evict(evicted, pid)
                source = directory.fetch(block, pid, is_write)
                if kind is MissKind.INVALIDATION and invalidator is not None:
                    pairwise[pid, invalidator] += 1
                elif kind is MissKind.COMPULSORY and source is not None:
                    pairwise[pid, source] += 1
                if lat_row is None:
                    context.ready_time = time + memory_latency
                elif source is not None:
                    context.ready_time = time + lat_row[source]
                else:
                    context.ready_time = time + mem_lat[block % groups]
                stalled = True
                break

            pos = base + i
            if stalled:
                break

        context.pos = pos
        # A context that stalled on its final reference is not done yet:
        # the thread completes only when that memory access returns, so it
        # stays pending (with its ready_time) and is marked done on resume.
        if pos >= context.length and not stalled:
            context.done = True
        self.time = time
        self.stats.busy += busy
        return stalled

    def _schedule_next(self) -> int | None:
        """Round-robin pick of the next context; switch, idle, or finish."""
        contexts = self.contexts
        n = len(contexts)

        # A ready context, scanning round-robin from the next slot.
        for offset in range(1, n + 1):
            index = (self.current + offset) % n
            candidate = contexts[index]
            if not candidate.done and candidate.ready_time <= self.time:
                if index != self.current:
                    self._pay_switch()
                self.current = index
                return self.time

        pending = [(c.ready_time, i) for i, c in enumerate(contexts) if not c.done]
        if not pending:
            self.finished = True
            self.stats.completion_time = self.time
            return None

        # Everyone is stalled: idle until the earliest miss completes.
        ready_time, index = min(
            pending, key=lambda item: (item[0], (item[1] - self.current) % n)
        )
        self.stats.idle += ready_time - self.time
        self.time = ready_time
        if index != self.current:
            self._pay_switch()
        self.current = index
        return self.time

    def _pay_switch(self) -> None:
        cost = self.config.context_switch_cycles
        self.time += cost
        self.stats.switching += cost
        if self._probe is not None:
            self._probe.switches += 1
