"""Deterministic fault plans: what to break, where, and how many times.

A :class:`FaultPlan` is a parsed schedule of :class:`FaultSpec`\\ s.  Each
spec names a *kind* of failure, the injection *site* it strikes, and
selectors narrowing when it fires:

========== ==================== =========================================
kind       valid sites          effect
========== ==================== =========================================
crash      worker               ``os._exit(13)`` — a hard worker death
error      worker               raise :class:`InjectedFault` in the job
hang       worker               sleep ``secs`` (default 3600) mid-job
disk-full  store, artifact,     raise ``OSError(ENOSPC)`` before writing
           analysis, chunks
corrupt    store, analysis,     overwrite bytes of the committed entry
           chunks
truncate   store, analysis,     cut the committed entry in half
           chunks
torn       journal              write half a journal line, then
                                ``os._exit(17)`` — a killed coordinator
diverge    speculate            fail a speculation guard check, forcing
                                the abort-to-full-replay path
node-crash node                 ``os._exit(23)`` — a whole worker *node*
                                dying mid-batch (distributed runs)
node-hang  node                 sleep ``secs`` in the node's batch
                                executor — a wedged node the liveness
                                watchdog must declare dead
partition  link                 raise ``ConnectionError`` on the next
                                coordinator→node request(s) — a network
                                partition that heals after ``times``
split-journal journal           write half a journal line, flush it, then
                                heal in place and continue — a journal
                                torn mid-append under a live tailer
========== ==================== =========================================

Selectors:

* ``job=SUBSTR`` — fire only when the site's context string (job label,
  job id, or artifact filename) contains ``SUBSTR``.  Scheduling-
  independent: the same cell is struck no matter which worker runs it.
* ``nth=K`` — fire on the K-th invocation of the site *within one
  process* (counters are per-process; deterministic for coordinator-only
  sites like ``journal``, or for single-worker runs).
* ``times=N`` — fire at most N times in total (default 1), counted
  across processes and runs through the ledger.
* ``secs=X`` — hang duration (hang faults only).

**The ledger** makes chaos runs convergent: every firing appends the
fault's id to a shared ledger file *before* the damage is done (O_APPEND
+ fsync, so even ``os._exit`` faults are recorded).  A fault whose ledger
count has reached ``times`` never fires again — so rerunning the same
command with ``--resume`` strictly drains the schedule and terminates.

Spec grammar (the ``--inject-faults`` argument)::

    SPEC   := FAULT (';' FAULT)*
    FAULT  := KIND ':' SITE (':' PARAM (',' PARAM)*)?
    PARAM  := KEY '=' VALUE

or ``random:seed=S[,count=N]`` for a seeded schedule drawn from the whole
fault vocabulary.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CRASH_EXIT_CODE",
    "NODE_CRASH_EXIT_CODE",
    "TORN_EXIT_CODE",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "parse_fault_spec",
    "random_fault_spec",
]

#: Exit code of an injected worker crash (``crash`` faults).
CRASH_EXIT_CODE = 13
#: Exit code of an injected coordinator death mid-journal-line (``torn``).
TORN_EXIT_CODE = 17
#: Exit code of an injected worker-node death (``node-crash`` faults).
NODE_CRASH_EXIT_CODE = 23

#: kind -> sites it may strike.
_VALID_SITES: dict[str, frozenset[str]] = {
    "crash": frozenset({"worker"}),
    "error": frozenset({"worker"}),
    "hang": frozenset({"worker"}),
    "disk-full": frozenset({"store", "artifact", "analysis", "chunks"}),
    "corrupt": frozenset({"store", "analysis", "chunks"}),
    "truncate": frozenset({"store", "analysis", "chunks"}),
    "torn": frozenset({"journal"}),
    "diverge": frozenset({"speculate"}),
    "node-crash": frozenset({"node"}),
    "node-hang": frozenset({"node"}),
    "partition": frozenset({"link"}),
    "split-journal": frozenset({"journal"}),
}

_PARAM_KEYS = frozenset({"job", "nth", "times", "secs"})


class InjectedFault(RuntimeError):
    """The exception an ``error`` fault raises inside a job."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault (see the module docstring for semantics)."""

    kind: str
    site: str
    job: str | None = None      #: substring match against the context
    nth: int | None = None      #: fire on the K-th site invocation
    times: int = 1              #: total firings allowed (via the ledger)
    secs: float = 3600.0        #: hang duration

    def __post_init__(self) -> None:
        sites = _VALID_SITES.get(self.kind)
        if sites is None:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(_VALID_SITES)}"
            )
        if self.site not in sites:
            raise ValueError(
                f"fault kind {self.kind!r} cannot strike site "
                f"{self.site!r}; valid sites: {sorted(sites)}"
            )
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.secs <= 0:
            raise ValueError(f"secs must be > 0, got {self.secs}")

    @property
    def fault_id(self) -> str:
        """Canonical id: the re-serialized spec (the ledger's unit)."""
        params = []
        if self.job is not None:
            params.append(f"job={self.job}")
        if self.nth is not None:
            params.append(f"nth={self.nth}")
        if self.times != 1:
            params.append(f"times={self.times}")
        if self.kind in ("hang", "node-hang") and self.secs != 3600.0:
            params.append(f"secs={self.secs:g}")
        suffix = f":{','.join(params)}" if params else ""
        return f"{self.kind}:{self.site}{suffix}"

    def matches(self, context: str | None, invocation: int) -> bool:
        """Whether the selectors accept this site invocation."""
        if self.job is not None and self.job not in (context or ""):
            return False
        if self.nth is not None and invocation != self.nth:
            return False
        return True


def _parse_fault(text: str) -> FaultSpec:
    pieces = text.split(":", 2)
    if len(pieces) < 2:
        raise ValueError(
            f"malformed fault {text!r}: expected KIND:SITE[:PARAMS]"
        )
    kind, site = pieces[0].strip(), pieces[1].strip()
    params: dict[str, object] = {}
    if len(pieces) == 3 and pieces[2].strip():
        for pair in pieces[2].split(","):
            if "=" not in pair:
                raise ValueError(
                    f"malformed fault parameter {pair!r} in {text!r}: "
                    "expected KEY=VALUE"
                )
            key, value = pair.split("=", 1)
            key = key.strip()
            if key not in _PARAM_KEYS:
                raise ValueError(
                    f"unknown fault parameter {key!r} in {text!r}; "
                    f"expected one of {sorted(_PARAM_KEYS)}"
                )
            if key in ("nth", "times"):
                params[key] = int(value)
            elif key == "secs":
                params[key] = float(value)
            else:
                params[key] = value
    return FaultSpec(kind=kind, site=site, **params)


def random_fault_spec(seed: int, count: int = 4) -> str:
    """A seeded schedule drawn from the whole fault vocabulary.

    Deterministic in ``seed``: the CI chaos job and a local repro of a
    red build parse to the identical plan.
    """
    rng = random.Random(seed)
    faults = []
    for _ in range(max(1, count)):
        template = rng.choice([
            lambda: f"crash:worker:nth={rng.randint(1, 8)}",
            lambda: (f"error:worker:nth={rng.randint(1, 8)},"
                     f"times={rng.randint(1, 3)}"),
            lambda: f"hang:worker:nth={rng.randint(1, 4)},secs=120",
            lambda: f"corrupt:store:nth={rng.randint(1, 10)}",
            lambda: f"truncate:store:nth={rng.randint(1, 10)}",
            lambda: f"disk-full:store:nth={rng.randint(1, 10)}",
            lambda: f"torn:journal:nth={rng.randint(5, 40)}",
        ])
        faults.append(template())
    return ";".join(faults)


def parse_fault_spec(spec: str) -> list[FaultSpec]:
    """Parse a ``--inject-faults`` argument into fault specs.

    Raises:
        ValueError: On any malformed fault, unknown kind/site/parameter,
            or out-of-range value — with a one-line message suitable for
            a CLI error.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty fault spec")
    if spec.startswith("random:"):
        params = dict(
            pair.split("=", 1) for pair in spec[len("random:"):].split(",")
            if "=" in pair
        )
        if "seed" not in params:
            raise ValueError(
                f"malformed random fault spec {spec!r}: expected "
                "random:seed=S[,count=N]"
            )
        spec = random_fault_spec(int(params["seed"]),
                                 int(params.get("count", 4)))
    return [_parse_fault(part) for part in spec.split(";") if part.strip()]


class FaultPlan:
    """A parsed fault schedule plus its firing ledger.

    The plan is consulted at every injection point (see
    :mod:`repro.faults`); with no matching fault the check is a dict
    lookup and an integer increment.  Invocation counters are
    per-process; the ledger file is shared across processes and runs.
    """

    def __init__(self, faults: list[FaultSpec],
                 ledger: str | Path | None = None) -> None:
        self.faults = list(faults)
        self.ledger = Path(ledger) if ledger is not None else None
        self._by_site: dict[str, list[FaultSpec]] = {}
        for fault in self.faults:
            self._by_site.setdefault(fault.site, []).append(fault)
        self._invocations: dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: str,
                  ledger: str | Path | None = None) -> "FaultPlan":
        return cls(parse_fault_spec(spec), ledger)

    # -- ledger ---------------------------------------------------------

    def _ledger_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        if self.ledger is None or not self.ledger.exists():
            return counts
        for line in self.ledger.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                counts[line] = counts.get(line, 0) + 1
        return counts

    def _record_firing(self, fault: FaultSpec) -> None:
        """Append the firing *durably* before the damage is done.

        O_APPEND keeps concurrent writers (coordinator + workers) from
        interleaving within a line; the fsync makes the record survive
        the ``os._exit`` that may follow immediately.
        """
        if self.ledger is None:
            # In-memory fallback: track in the invocation map so
            # ledgerless plans still honor ``times`` within a process.
            key = f"fired::{fault.fault_id}"
            self._invocations[key] = self._invocations.get(key, 0) + 1
            return
        self.ledger.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.ledger, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            os.write(fd, (fault.fault_id + "\n").encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    def _spent(self, fault: FaultSpec, counts: dict[str, int]) -> bool:
        if self.ledger is None:
            fired = self._invocations.get(f"fired::{fault.fault_id}", 0)
        else:
            fired = counts.get(fault.fault_id, 0)
        return fired >= fault.times

    # -- selection ------------------------------------------------------

    def pending(
        self,
        site: str,
        context: str | None = None,
        *,
        kinds: frozenset[str] | None = None,
        counter: str | None = None,
    ) -> FaultSpec | None:
        """The first fault due at this site invocation, recorded as fired.

        Advances the injection point's per-process invocation counter,
        checks every fault planned for the site (restricted to ``kinds``,
        the kinds this injection point can act on) against its selectors
        and remaining ``times`` budget, and — when one is due — appends
        it to the ledger and returns it.  Returns None when nothing
        fires.

        ``counter`` separates injection points sharing a site (the store
        counts its pre-write and post-commit hooks independently), so a
        ``nth=K`` selector means "the K-th invocation of *that* hook".
        """
        key = counter or site
        invocation = self._invocations.get(key, 0) + 1
        self._invocations[key] = invocation
        due = self._by_site.get(site)
        if not due:
            return None
        counts = self._ledger_counts()
        for fault in due:
            if kinds is not None and fault.kind not in kinds:
                continue
            if not fault.matches(context, invocation):
                continue
            if self._spent(fault, counts):
                continue
            self._record_firing(fault)
            return fault
        return None

    def remaining(self) -> list[FaultSpec]:
        """Faults with firings left in their ``times`` budget."""
        counts = self._ledger_counts()
        return [f for f in self.faults if not self._spent(f, counts)]

    def describe(self) -> str:
        return "; ".join(f.fault_id for f in self.faults)
