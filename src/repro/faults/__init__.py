"""Deterministic fault injection for the experiment pipeline.

The chaos harness's contract: the production code carries a handful of
*injection points* — explicit, named call sites in the exec engine, the
result store, the journal and the artifact writers — and this package
decides, from a seeded :class:`~repro.faults.plan.FaultPlan`, whether a
planned fault is due at each one.  No monkeypatching: the same binary
that serves a clean run serves a chaos run, so the chaos tests exercise
the real recovery paths.

The active plan travels through two environment variables —
``REPRO_FAULTS`` (the spec string) and ``REPRO_FAULT_LEDGER`` (the shared
firing ledger) — so spawned worker processes inherit it without any
engine plumbing.  With ``REPRO_FAULTS`` unset every injection point is a
single dict lookup.

Injection points:

* :func:`fire` — process-level faults: ``crash`` / ``error`` / ``hang``
  at site ``worker``; ``disk-full`` at ``store`` / ``artifact``.
* :func:`mangle` — data faults: ``corrupt`` / ``truncate`` a committed
  artifact (simulating bit rot or a torn legacy write the checksums must
  catch).
* :func:`tear` — the ``torn`` fault: write half a journal line, fsync
  it, and die like a SIGKILLed coordinator.
* :func:`diverge` — the ``diverge`` fault at site ``speculate``: make a
  speculation guard report divergence, forcing the abort-to-full-replay
  path the differential tier must prove invisible.
* :func:`fire_node` — node-level faults at site ``node``:
  ``node-crash`` kills the whole worker-node process; ``node-hang``
  wedges its batch executor so the coordinator's liveness watchdog must
  declare it dead.
* :func:`partitioned` — the ``partition`` fault at site ``link``: the
  coordinator's node client treats True as a refused connection, so a
  ``times=N`` schedule models a partition that heals after N requests.
* :func:`split` — the ``split-journal`` fault at site ``journal``: the
  writer tears a line mid-append (half the bytes, flushed, visible to
  any live tailer) and then heals the file in place and keeps going —
  the exact mid-line-truncation-under-follow scenario the cross-node
  journal merge must survive.

See ``docs/ROBUSTNESS.md`` for the failure model and the convergence
property the chaos suite enforces; ``docs/DISTRIBUTION.md`` covers the
node-level kinds.
"""

from __future__ import annotations

import errno
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.faults.plan import (
    CRASH_EXIT_CODE,
    NODE_CRASH_EXIT_CODE,
    TORN_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    parse_fault_spec,
    random_fault_spec,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "NODE_CRASH_EXIT_CODE",
    "TORN_EXIT_CODE",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "diverge",
    "fire",
    "fire_node",
    "installed",
    "mangle",
    "parse_fault_spec",
    "partitioned",
    "random_fault_spec",
    "split",
    "tear",
]

SPEC_VAR = "REPRO_FAULTS"
LEDGER_VAR = "REPRO_FAULT_LEDGER"

#: Deterministic garbage written by ``corrupt`` faults.
_GARBAGE = b"\xde\xad\xbe\xef" * 4

# Cache: (spec, ledger) -> FaultPlan, so counters persist across calls
# within a process while env changes (tests) rebuild the plan.
_cached_key: tuple[str, str] | None = None
_cached_plan: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The plan configured in the environment, or None (the fast path)."""
    global _cached_key, _cached_plan
    spec = os.environ.get(SPEC_VAR)
    if not spec:
        _cached_key = _cached_plan = None
        return None
    ledger = os.environ.get(LEDGER_VAR, "")
    key = (spec, ledger)
    if key != _cached_key:
        _cached_plan = FaultPlan.from_spec(spec, ledger or None)
        _cached_key = key
    return _cached_plan


@contextmanager
def installed(spec: str, ledger: str | Path | None = None) -> Iterator[FaultPlan]:
    """Activate a fault plan for the duration of a ``with`` block.

    Sets the environment variables (so spawned workers inherit the plan)
    and resets the per-process cache on exit.  Test-suite sugar; the CLI
    sets the variables directly.
    """
    global _cached_key, _cached_plan
    previous = {var: os.environ.get(var) for var in (SPEC_VAR, LEDGER_VAR)}
    os.environ[SPEC_VAR] = spec
    if ledger is not None:
        os.environ[LEDGER_VAR] = str(ledger)
    else:
        os.environ.pop(LEDGER_VAR, None)
    _cached_key = _cached_plan = None
    try:
        plan = active_plan()
        assert plan is not None
        yield plan
    finally:
        for var, value in previous.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
        _cached_key = _cached_plan = None


def fire(site: str, context: str | None = None) -> None:
    """Trigger any process-level fault due at this site invocation.

    ``crash`` calls ``os._exit``; ``error`` raises
    :class:`InjectedFault`; ``hang`` sleeps; ``disk-full`` raises
    ``OSError(ENOSPC)``.  No-op (one dict lookup) without an active plan.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.pending(
        site, context,
        kinds=frozenset({"crash", "error", "hang", "disk-full"}),
    )
    if fault is None:
        return
    if fault.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if fault.kind == "error":
        raise InjectedFault(
            f"injected fault {fault.fault_id} at {context or site}"
        )
    if fault.kind == "hang":
        time.sleep(fault.secs)
        return
    if fault.kind == "disk-full":
        raise OSError(
            errno.ENOSPC,
            f"No space left on device (injected {fault.fault_id})",
        )


def mangle(site: str, path: str | Path, context: str | None = None) -> bool:
    """Corrupt or truncate a committed artifact if a data fault is due.

    Returns True if the file was damaged.  This simulates what the
    hardened loaders must survive: bit rot, or a partial write left by an
    unhardened writer — the sha256 sidecar check catches either.
    """
    plan = active_plan()
    if plan is None:
        return False
    path = Path(path)
    fault = plan.pending(
        site, context if context is not None else path.name,
        kinds=frozenset({"corrupt", "truncate"}), counter=f"{site}#data",
    )
    if fault is None:
        return False
    size = path.stat().st_size
    if fault.kind == "truncate":
        os.truncate(path, size // 2)
        return True
    with open(path, "r+b") as stream:
        stream.seek(max(0, size // 3))
        stream.write(_GARBAGE)
    return True


def diverge(context: str | None = None) -> bool:
    """Whether an injected ``diverge`` fault is due at the guard check.

    The speculation layer consults this once per attempted cell (site
    ``speculate``; ``context`` is the cell's job id) and treats True
    exactly like a real guard failure: abort, fall back to full replay.
    No-op (one dict lookup) without an active plan.
    """
    plan = active_plan()
    if plan is None:
        return False
    return plan.pending(
        "speculate", context, kinds=frozenset({"diverge"}),
    ) is not None


def fire_node(context: str | None = None) -> None:
    """Trigger any node-level fault due at this batch execution.

    Consulted by the worker-node server (site ``node``; ``context`` is
    the node name) once per accepted batch.  ``node-crash`` calls
    ``os._exit`` — the whole node process dies, exactly like a machine
    loss, and the coordinator's liveness watchdog must notice and
    re-route the batch.  ``node-hang`` sleeps ``secs`` in the batch
    executor thread, wedging the node without killing it.  No-op (one
    dict lookup) without an active plan.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.pending(
        "node", context, kinds=frozenset({"node-crash", "node-hang"}),
    )
    if fault is None:
        return
    if fault.kind == "node-crash":
        os._exit(NODE_CRASH_EXIT_CODE)
    time.sleep(fault.secs)


def partitioned(context: str | None = None) -> bool:
    """Whether an injected ``partition`` fault severs this request.

    The coordinator's node client consults this (site ``link``;
    ``context`` is ``"node-name METHOD /path"``) before every request
    and treats True exactly like a refused connection.  A ``times=N``
    schedule therefore models a partition that heals after N requests —
    the retry/re-route layers must ride it out.  No-op without a plan.
    """
    plan = active_plan()
    if plan is None:
        return False
    return plan.pending(
        "link", context, kinds=frozenset({"partition"}),
        counter="link#partition",
    ) is not None


def split(site: str, line: str, stream: IO[str]) -> bool:
    """Tear a journal line mid-append, leaving the writer alive.

    When a ``split-journal`` fault is due, writes the first half of
    ``line`` with no newline and flushes it — so a concurrent tailer
    really observes the torn tail — then returns True.  The caller
    (:meth:`repro.exec.journal.RunJournal.record`) heals the file back
    to a line boundary and appends the full line, modelling a journal
    segment torn by a dying writer whose successor recovers it in
    place.  Returns False (one dict lookup) when nothing fires.
    """
    plan = active_plan()
    if plan is None:
        return False
    fault = plan.pending(site, line, kinds=frozenset({"split-journal"}),
                         counter=f"{site}#split")
    if fault is None:
        return False
    stream.write(line[: max(1, len(line) // 2)])
    stream.flush()
    try:
        os.fsync(stream.fileno())
    except OSError:
        pass
    return True


def tear(site: str, line: str, stream: IO[str]) -> None:
    """Die mid-line if a ``torn`` fault is due (torn-journal injection).

    Writes the first half of ``line`` to ``stream`` with no newline,
    flushes and fsyncs it so the torn tail really reaches the file, then
    ``os._exit`` — byte-for-byte what a coordinator killed mid-append
    leaves behind.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.pending(site, line, kinds=frozenset({"torn"}))
    if fault is None:
        return
    stream.write(line[: max(1, len(line) // 2)])
    stream.flush()
    try:
        os.fsync(stream.fileno())
    except OSError:
        pass
    os._exit(TORN_EXIT_CODE)
