"""Runtime conservation laws for the simulator.

:class:`InvariantChecker` audits a live simulation — enabled via
``simulate(..., check_invariants=True)`` or the CLI ``--check-invariants``
flags — and raises :class:`InvariantViolation` the moment bookkeeping
drifts.  The laws, checked after every scheduling quantum (Q) and again at
completion (C):

1. **Cycle conservation** (Q, C): per processor,
   ``busy + switching + idle == local time``; at completion the local time
   is the recorded ``completion_time``.
2. **Clock monotonicity** (Q): a processor's local time never decreases.
3. **Access conservation** (Q, C): per cache, ``hits + Σ misses-by-kind``
   equals the references its contexts have replayed; machine-wide at
   completion it equals the trace set's total references.
4. **Miss decomposition** (Q, C): every per-kind miss counter is
   non-negative and the four kinds sum to the cache's total misses.
5. **Compulsory = first touches** (Q, C): per cache, compulsory misses
   equal the number of *distinct* blocks its contexts have referenced —
   recomputed here from the replayed trace prefixes, independently of the
   cache's own first-touch bookkeeping.
6. **Directory/cache synchronization** (sampled Q, C): every block's
   directory sharer set exactly matches the caches in which it is
   resident.  This is a full scan of coherence state, so during the run it
   is sampled every ``directory_check_interval`` quanta; completion always
   checks it.
7. **Fetch conservation** (C): interconnect memory fetches equal total
   misses (every miss performs exactly one fetch), and invalidation
   misses never exceed invalidations sent (each invalidation miss consumes
   one prior invalidation).

The checker holds no simulation logic of its own: it only *recounts* what
the production structures claim, from independently tracked replay
cursors.  Its cost is a few dict/set operations per replayed reference,
which is why it is off by default on the hot path.
"""

from __future__ import annotations

from repro.arch.stats import MissKind, SimulationResult

__all__ = ["InvariantChecker", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """A simulator conservation law failed mid-run or at completion."""


class InvariantChecker:
    """Audits one simulation's processors, caches and directory.

    Args:
        processors: The live :class:`~repro.arch.processor.Processor` list.
        caches: The live per-processor caches.
        directory: The live coherence :class:`~repro.arch.directory.Directory`.
        directory_check_interval: Full directory/cache synchronization is
            verified every this-many quanta (it scans all coherence
            state); 0 defers it to completion only.
    """

    def __init__(
        self,
        processors: list,
        caches: list,
        directory,
        *,
        directory_check_interval: int = 64,
    ) -> None:
        if directory_check_interval < 0:
            raise ValueError(
                f"directory_check_interval must be >= 0, "
                f"got {directory_check_interval!r}"
            )
        self._processors = processors
        self._caches = caches
        self._directory = directory
        self._interval = directory_check_interval
        self._quanta = 0
        #: Per processor: distinct blocks its contexts have referenced.
        self._touched: list[set[int]] = [set() for _ in processors]
        #: Per processor, per context: replay cursor at the last audit.
        self._cursors: list[list[int]] = [
            [0] * len(proc.contexts) for proc in processors
        ]
        self._last_time: list[int] = [proc.time for proc in processors]

    # ------------------------------------------------------------------

    def after_quantum(self, pid: int) -> None:
        """Audit processor ``pid`` after one scheduling quantum."""
        self._quanta += 1
        self._advance_cursors(pid)
        proc = self._processors[pid]
        if proc.time < self._last_time[pid]:
            self._fail(
                f"processor {pid} clock went backwards: "
                f"{self._last_time[pid]} -> {proc.time}"
            )
        self._last_time[pid] = proc.time
        self._check_processor(pid, proc.time)
        if self._interval and self._quanta % self._interval == 0:
            self._check_directory()

    def at_completion(self, result: SimulationResult) -> None:
        """Audit the finished machine and its reported result."""
        total_replayed = 0
        for pid, proc in enumerate(self._processors):
            self._advance_cursors(pid)
            total_replayed += sum(self._cursors[pid])
            stats = proc.stats
            if stats.total != stats.completion_time:
                self._fail(
                    f"processor {pid} cycle accounting does not cover its "
                    f"completion time: busy={stats.busy} + "
                    f"switching={stats.switching} + idle={stats.idle} = "
                    f"{stats.total} != completion_time={stats.completion_time}"
                )
            self._check_processor(pid, stats.completion_time)
        if total_replayed != result.total_refs:
            self._fail(
                f"machine replayed {total_replayed} references, trace set "
                f"has {result.total_refs}"
            )
        totals = result.cache_totals
        if totals.total_accesses != result.total_refs:
            self._fail(
                f"cache accesses ({totals.total_accesses}) != total "
                f"references ({result.total_refs})"
            )
        fetches = result.interconnect.memory_fetches
        if fetches != totals.total_misses:
            self._fail(
                f"memory fetches ({fetches}) != total misses "
                f"({totals.total_misses}): every miss fetches exactly once"
            )
        inval_misses = totals.misses[MissKind.INVALIDATION]
        if inval_misses > result.interconnect.invalidations_sent:
            self._fail(
                f"{inval_misses} invalidation misses exceed the "
                f"{result.interconnect.invalidations_sent} invalidations sent"
            )
        expected_time = max(p.completion_time for p in result.processors)
        if result.execution_time != expected_time:
            self._fail(
                f"execution_time={result.execution_time} is not the slowest "
                f"processor's completion time ({expected_time})"
            )
        self._check_directory()

    # ------------------------------------------------------------------

    def _advance_cursors(self, pid: int) -> None:
        """Fold newly replayed references into the first-touch tracker."""
        touched = self._touched[pid]
        cursors = self._cursors[pid]
        for index, context in enumerate(self._processors[pid].contexts):
            start = cursors[index]
            if context.pos > start:
                touched.update(context.blocks[start:context.pos])
                cursors[index] = context.pos

    def _check_processor(self, pid: int, local_time: int) -> None:
        stats = self._processors[pid].stats
        accounted = stats.busy + stats.switching + stats.idle
        if accounted != local_time:
            self._fail(
                f"processor {pid} cycle accounting leaks: busy={stats.busy} "
                f"+ switching={stats.switching} + idle={stats.idle} = "
                f"{accounted} != local time {local_time}"
            )
        cache = self._caches[pid].stats
        for kind, count in cache.misses.items():
            if count < 0:
                self._fail(f"cache {pid} has negative {kind.value} count {count}")
        replayed = sum(self._cursors[pid])
        if cache.hits + cache.total_misses != replayed:
            self._fail(
                f"cache {pid} accesses (hits={cache.hits} + "
                f"misses={cache.total_misses}) != {replayed} references "
                f"replayed on processor {pid}"
            )
        first_touches = len(self._touched[pid])
        compulsory = cache.misses[MissKind.COMPULSORY]
        if compulsory != first_touches:
            self._fail(
                f"cache {pid} counts {compulsory} compulsory misses but its "
                f"contexts first-touched {first_touches} distinct blocks"
            )

    def _check_directory(self) -> None:
        try:
            self._directory.check_invariants()
        except AssertionError as exc:
            self._fail(str(exc))

    def _fail(self, message: str) -> None:
        raise InvariantViolation(f"after quantum {self._quanta}: {message}")
