"""A slow, obviously-correct reference interpreter for the simulator.

:func:`reference_simulate` recomputes exactly what
:func:`repro.arch.simulator.simulate` computes — execution time, the
four-way :class:`~repro.arch.stats.MissKind` decomposition, interconnect
traffic and the pairwise coherence matrix — but from a deliberately naive
implementation whose every step is auditable:

* one **global clock loop**: at each step the processor with the smallest
  ``(local time, pid)`` runs one scheduling quantum (mirroring the
  production heap's tuple ordering, where each active processor always
  holds exactly one entry);
* **per-reference replay**: references are processed one at a time from
  plain ``(gap, block, is_write)`` tuples — no columnar batching, no
  flattened fast path;
* **dict-based caches** whose miss classification is recomputed from the
  full access/departure *history* (first-touch set plus a departure
  record per block), not from the production caches' incremental
  bookkeeping, and whose direct-mapped and set-associative organizations
  are one uniform LRU model (``ways=1`` *is* direct-mapped);
* a **dict-based directory** holding an explicit sharer set per block.

The model it implements is the paper's machine (§3.2) under the
reproduction's stated timing rules (DESIGN.md, "Key design decisions"):

* every reference costs its instruction gap plus the cache hit time,
  charged to *busy* cycles whether it hits or misses;
* a miss stalls the issuing context for the memory latency and hands the
  pipeline to the next ready context in round-robin order (6-cycle
  switch); if no context is ready the processor *idles* until the
  earliest stall resolves;
* coherence actions apply at the issuing processor's current time, in
  global ``(time, pid)`` order at quantum granularity — the standard
  trace-driven approximation.

This module must stay independent of :mod:`repro.arch.cache`,
:mod:`repro.arch.directory` and :mod:`repro.arch.processor`: it shares
only the configuration, trace and result *types* with the production
simulator, never its mechanisms.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.stats import (
    CacheStats,
    InterconnectStats,
    MissKind,
    ProcessorStats,
    SimulationResult,
)
from repro.placement.base import PlacementMap
from repro.trace.stream import TraceSet
from repro.util.validate import check_positive

__all__ = ["reference_simulate"]


class _HistoryCache:
    """One processor's cache, classified from the full history.

    A uniform LRU set-associative model (``ways=1`` is direct-mapped).
    Classification rules (paper §3.2):

    * block never resident in this cache before → **compulsory**;
    * block's most recent departure was a coherence invalidation →
      **invalidation** miss (the invalidator is the recorded writer);
    * otherwise the block was evicted by a mapping conflict → **conflict**
      miss, *intra*-thread when the evicting reference came from the same
      thread as the missing one, *inter*-thread otherwise.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        #: set index -> resident [(block, thread)], most recently used first.
        self.sets: dict[int, list[tuple[int, int]]] = {}
        #: every block that was ever resident here.
        self.ever_seen: set[int] = set()
        #: block -> ("evicted" | "invalidated", actor) for its last departure.
        self.departure: dict[int, tuple[str, int]] = {}
        self.stats = CacheStats()

    def access(
        self, block: int, thread_id: int
    ) -> tuple[MissKind | None, int | None, int | None]:
        """One reference; returns ``(miss_kind, evicted_block, invalidator)``
        with the same contract as the production caches."""
        lines = self.sets.setdefault(block % self.num_sets, [])
        for position, (resident, _) in enumerate(lines):
            if resident == block:
                lines.insert(0, lines.pop(position))  # promote to MRU
                self.stats.record_hit()
                return None, None, None

        invalidator: int | None = None
        if block not in self.ever_seen:
            kind = MissKind.COMPULSORY
            self.ever_seen.add(block)
        else:
            how, actor = self.departure.pop(block)
            if how == "invalidated":
                kind = MissKind.INVALIDATION
                invalidator = actor
            elif actor == thread_id:
                kind = MissKind.INTRA_THREAD_CONFLICT
            else:
                kind = MissKind.INTER_THREAD_CONFLICT
        self.stats.record_miss(kind)

        evicted: int | None = None
        if len(lines) >= self.ways:
            evicted, _ = lines.pop()
            self.departure[evicted] = ("evicted", thread_id)
        lines.insert(0, (block, thread_id))
        return kind, evicted, invalidator

    def invalidate(self, block: int, by_processor: int) -> bool:
        """Coherence invalidation; True when the block was resident."""
        lines = self.sets.get(block % self.num_sets, [])
        for position, (resident, _) in enumerate(lines):
            if resident == block:
                lines.pop(position)
                self.departure[block] = ("invalidated", by_processor)
                return True
        return False

    def resident_blocks(self) -> set[int]:
        return {block for lines in self.sets.values() for block, _ in lines}


class _HistoryDirectory:
    """Full-map write-invalidate directory over the reference caches.

    On a tiered topology (``config.topology`` with unequal tiers) the
    directory additionally remembers, after each invalidation round, the
    farthest tier it reached — recomputed naively per holder from the
    topology's group arithmetic, never from the production lookup
    tables.  A stalling upgrade waits that long.
    """

    def __init__(self, caches: list[_HistoryCache], pairwise: np.ndarray,
                 config: ArchConfig | None = None) -> None:
        self.caches = caches
        self.sharers: dict[int, set[int]] = {}
        self.last_writer: dict[int, int] = {}
        self.stats = InterconnectStats()
        self.pairwise = pairwise
        self.config = config
        self.last_upgrade_latency = 0

    def fetch(self, block: int, processor: int, is_write: bool) -> int | None:
        """A miss fetch; returns the processor the data was sourced from
        (the last writer if it still holds the block, else the lowest
        sharer), or None when only memory holds it."""
        self.stats.memory_fetches += 1
        sharers = self.sharers.setdefault(block, set())
        source: int | None = None
        if sharers:
            writer = self.last_writer.get(block)
            source = writer if writer in sharers else min(sharers)
        if is_write:
            self._invalidate_others(block, processor, sharers)
            sharers.clear()
            self.last_writer[block] = processor
        sharers.add(processor)
        return source

    def write_hit(self, block: int, processor: int) -> int:
        """The upgrade path; returns invalidations sent."""
        sharers = self.sharers.setdefault(block, set())
        sent = 0
        if len(sharers) > 1 or (sharers and processor not in sharers):
            before = self.stats.invalidations_sent
            self._invalidate_others(block, processor, sharers)
            sent = self.stats.invalidations_sent - before
            sharers.clear()
            sharers.add(processor)
        self.last_writer[block] = processor
        return sent

    def evict(self, block: int, processor: int) -> None:
        """A cache silently dropped its copy."""
        sharers = self.sharers.get(block)
        if sharers is not None:
            sharers.discard(processor)

    def _invalidate_others(self, block: int, writer: int, sharers: set[int]) -> None:
        worst = 0
        for holder in sharers:
            if holder == writer:
                continue
            if self.caches[holder].invalidate(block, by_processor=writer):
                self.stats.invalidations_sent += 1
                self.pairwise[writer, holder] += 1
                reached = _tier_latency(self.config, writer, holder)
                if reached > worst:
                    worst = reached
        self.last_upgrade_latency = worst


def _tier_latency(config: ArchConfig | None, pid: int, other: int) -> int:
    """Naive per-pair tier latency: explicit group arithmetic per call.

    Deliberately recomputed from first principles on every use — the
    reference never touches the production engines' precomputed lookup
    rows.
    """
    if config is None or config.topology is None:
        return 0 if config is None else config.memory_latency_cycles
    topology = config.topology
    group_size = config.num_processors // topology.groups
    if pid // group_size == other // group_size:
        return topology.local_latency
    return topology.remote_latency


def _miss_latency(config: ArchConfig, pid: int, source: int | None,
                  block: int) -> int:
    """Naive miss-stall latency: the source's tier, or the block's home
    group when memory services the fetch (round-robin interleaving)."""
    topology = config.topology
    if topology is None:
        return config.memory_latency_cycles
    if source is not None:
        return _tier_latency(config, pid, source)
    group_size = config.num_processors // topology.groups
    if block % topology.groups == pid // group_size:
        return topology.local_latency
    return topology.remote_latency


class _Context:
    """One hardware context: the thread's references plus a replay cursor."""

    def __init__(self, thread_id: int, refs: list[tuple[int, int, bool]]) -> None:
        self.thread_id = thread_id
        self.refs = refs  # [(gap, block, is_write)]
        self.length = len(refs)
        self.pos = 0
        self.ready_time = 0
        self.done = not refs


class _RefProcessor:
    """One multithreaded processor replayed one reference at a time."""

    def __init__(
        self,
        pid: int,
        config: ArchConfig,
        cache: _HistoryCache,
        directory: _HistoryDirectory,
        contexts: list[_Context],
    ) -> None:
        self.pid = pid
        self.config = config
        self.cache = cache
        self.directory = directory
        self.contexts = contexts
        self.stats = ProcessorStats()
        self.time = 0
        self.current = 0
        self.finished = all(context.done for context in contexts)

    def run_quantum(self, quantum_refs: int) -> bool:
        """One scheduling quantum; returns False once every context is done.

        The current context replays references one by one until it misses,
        finishes, or exhausts the quantum; then the round-robin policy
        picks a successor (or the processor idles / finishes).
        """
        context = self.contexts[self.current]
        stalled = False
        replayed = 0
        while replayed < quantum_refs and context.pos < context.length:
            gap, block, is_write = context.refs[context.pos]
            cost = gap + self.config.hit_cycles
            self.time += cost
            self.stats.busy += cost
            context.pos += 1
            replayed += 1
            kind, evicted, invalidator = self.cache.access(block, context.thread_id)
            if kind is None:
                if is_write:
                    sent = self.directory.write_hit(block, self.pid)
                    if sent and self.config.write_upgrade_stalls:
                        # An invalidation round went out (sent > 0), so the
                        # directory just recomputed how far it reached; the
                        # context waits out the farthest copy (one uniform
                        # latency on the flat machine).
                        stalled = self._stall(
                            context, self.directory.last_upgrade_latency)
                        break
                continue
            # Miss: the coherence transaction, then the memory latency of
            # the tier the data comes from (recomputed naively per miss).
            if evicted is not None:
                self.directory.evict(evicted, self.pid)
            source = self.directory.fetch(block, self.pid, is_write)
            if kind is MissKind.INVALIDATION and invalidator is not None:
                self.directory.pairwise[self.pid, invalidator] += 1
            elif kind is MissKind.COMPULSORY and source is not None:
                self.directory.pairwise[self.pid, source] += 1
            stalled = self._stall(
                context, _miss_latency(self.config, self.pid, source, block))
            break

        # A context that stalled on its final reference completes only when
        # that access returns: it stays pending and is marked done on resume.
        if context.pos >= context.length and not stalled:
            context.done = True
        if not stalled and not context.done:
            return True  # quantum expired mid-run; same context continues
        return self._schedule_next()

    def _stall(self, context: _Context, latency: int) -> bool:
        context.ready_time = self.time + latency
        return True

    def _schedule_next(self) -> bool:
        """Round-robin pick of the next context; switch, idle, or finish."""
        n = len(self.contexts)
        for offset in range(1, n + 1):
            index = (self.current + offset) % n
            candidate = self.contexts[index]
            if not candidate.done and candidate.ready_time <= self.time:
                self._switch_to(index)
                return True

        pending = [
            (context.ready_time, index)
            for index, context in enumerate(self.contexts)
            if not context.done
        ]
        if not pending:
            self.finished = True
            self.stats.completion_time = self.time
            return False

        # Every context is stalled: idle until the earliest miss completes,
        # breaking ties by round-robin distance from the current context.
        ready_time, index = min(
            pending, key=lambda item: (item[0], (item[1] - self.current) % n)
        )
        self.stats.idle += ready_time - self.time
        self.time = ready_time
        self._switch_to(index)
        return True

    def _switch_to(self, index: int) -> None:
        if index != self.current:
            self.time += self.config.context_switch_cycles
            self.stats.switching += self.config.context_switch_cycles
        self.current = index


def reference_simulate(
    trace_set: TraceSet,
    placement: PlacementMap,
    config: ArchConfig,
    *,
    quantum_refs: int = 256,
) -> SimulationResult:
    """Replay one application on the reference machine model.

    Same signature, semantics and :class:`SimulationResult` contract as
    :func:`repro.arch.simulator.simulate`; the differential suite asserts
    the two agree *exactly* on every metric.

    Raises:
        ValueError: On the same placement/configuration mismatches the
            production simulator rejects.
    """
    check_positive("quantum_refs", quantum_refs)
    if placement.num_threads != trace_set.num_threads:
        raise ValueError(
            f"placement covers {placement.num_threads} threads, trace set has "
            f"{trace_set.num_threads}"
        )
    if placement.num_processors != config.num_processors:
        raise ValueError(
            f"placement targets {placement.num_processors} processors, "
            f"config has {config.num_processors}"
        )

    p = config.num_processors
    pairwise = np.zeros((p, p), dtype=np.int64)
    caches = [_HistoryCache(config.num_sets, config.associativity) for _ in range(p)]
    directory = _HistoryDirectory(caches, pairwise, config)
    processors = []
    for pid in range(p):
        contexts = []
        for tid in placement.threads_on(pid):
            trace = trace_set[tid]
            refs = [
                (int(gap), int(addr) >> config.block_bits, bool(write))
                for gap, addr, write in zip(trace.gaps, trace.addrs, trace.writes)
            ]
            contexts.append(_Context(tid, refs))
        if len(contexts) > config.contexts_per_processor:
            raise ValueError(
                f"processor {pid} was assigned {len(contexts)} threads but has "
                f"only {config.contexts_per_processor} hardware contexts"
            )
        processors.append(_RefProcessor(pid, config, caches[pid], directory, contexts))

    # The single global clock: always run the processor with the smallest
    # (local time, pid) among those with work left.  Each active processor
    # is considered exactly once per quantum, so this is the same total
    # order the production simulator's min-heap produces.
    active = {proc.pid: proc for proc in processors if not proc.finished}
    while active:
        proc = min(active.values(), key=lambda candidate: (candidate.time, candidate.pid))
        if not proc.run_quantum(quantum_refs):
            del active[proc.pid]

    return SimulationResult(
        execution_time=max(proc.stats.completion_time for proc in processors),
        processors=[proc.stats for proc in processors],
        caches=[cache.stats for cache in caches],
        interconnect=directory.stats,
        pairwise_coherence=pairwise,
        total_refs=trace_set.total_refs,
    )
