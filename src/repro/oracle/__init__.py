"""Correctness oracle for the trace-driven simulator.

The production simulator (:mod:`repro.arch.simulator`) is optimized for
throughput: columnar traces flattened to lists, a tight per-quantum replay
loop, incremental cache departure records.  This package is its
independent check:

* :mod:`repro.oracle.reference` — a deliberately slow, obviously-correct
  **reference interpreter** that recomputes every metric (execution time,
  the four-way miss decomposition, interconnect traffic, the pairwise
  coherence matrix) from first principles: a single global clock, one
  reference replayed at a time, dict-based caches and directory, and
  classification recomputed from the full access history.
* :mod:`repro.oracle.invariants` — a **runtime invariant checker** that
  audits conservation laws (cycle accounting, miss bookkeeping,
  directory/cache synchronization) after every scheduling quantum and at
  completion, enabled via ``simulate(..., check_invariants=True)``.
* :mod:`repro.oracle.compare` — exact structural comparison of two
  :class:`~repro.arch.stats.SimulationResult`\\ s, used by the
  differential test suite (``tests/oracle/``) and the CLI ``--oracle``
  cross-check.

See ``docs/VALIDATION.md`` for the invariant list and how to run the
differential suite.
"""

from repro.oracle.compare import assert_equivalent, diff_results
from repro.oracle.invariants import InvariantChecker, InvariantViolation
from repro.oracle.reference import reference_simulate

__all__ = [
    "reference_simulate",
    "diff_results",
    "assert_equivalent",
    "InvariantChecker",
    "InvariantViolation",
]
