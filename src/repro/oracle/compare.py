"""Exact structural comparison of two simulation results.

The differential suite requires the production simulator and the
reference interpreter to agree *exactly* — no tolerances — on every
metric a :class:`~repro.arch.stats.SimulationResult` carries.
:func:`diff_results` reports every field that differs (empty list means
equivalent); :func:`assert_equivalent` turns that into one readable
assertion failure.
"""

from __future__ import annotations

import numpy as np

from repro.arch.stats import MissKind, SimulationResult

__all__ = ["diff_results", "assert_equivalent"]


def diff_results(
    actual: SimulationResult,
    expected: SimulationResult,
    *,
    actual_name: str = "simulator",
    expected_name: str = "oracle",
) -> list[str]:
    """Every metric on which two results disagree, as readable lines."""
    diffs: list[str] = []

    def check(path: str, a, b) -> None:
        if a != b:
            diffs.append(f"{path}: {actual_name}={a!r} {expected_name}={b!r}")

    check("execution_time", actual.execution_time, expected.execution_time)
    check("total_refs", actual.total_refs, expected.total_refs)
    check("num_processors", actual.num_processors, expected.num_processors)

    for pid, (a, b) in enumerate(zip(actual.processors, expected.processors)):
        check(f"processors[{pid}].busy", a.busy, b.busy)
        check(f"processors[{pid}].switching", a.switching, b.switching)
        check(f"processors[{pid}].idle", a.idle, b.idle)
        check(f"processors[{pid}].completion_time",
              a.completion_time, b.completion_time)

    for pid, (a, b) in enumerate(zip(actual.caches, expected.caches)):
        check(f"caches[{pid}].hits", a.hits, b.hits)
        for kind in MissKind:
            check(f"caches[{pid}].misses[{kind.value}]",
                  a.misses[kind], b.misses[kind])

    check("interconnect.memory_fetches",
          actual.interconnect.memory_fetches,
          expected.interconnect.memory_fetches)
    check("interconnect.invalidations_sent",
          actual.interconnect.invalidations_sent,
          expected.interconnect.invalidations_sent)

    if not np.array_equal(actual.pairwise_coherence, expected.pairwise_coherence):
        diffs.append(
            "pairwise_coherence:\n"
            f"  {actual_name}=\n{actual.pairwise_coherence}\n"
            f"  {expected_name}=\n{expected.pairwise_coherence}"
        )
    return diffs


def assert_equivalent(
    actual: SimulationResult,
    expected: SimulationResult,
    *,
    actual_name: str = "simulator",
    expected_name: str = "oracle",
    context: str = "",
) -> None:
    """Raise ``AssertionError`` listing every differing metric."""
    diffs = diff_results(actual, expected,
                         actual_name=actual_name, expected_name=expected_name)
    if diffs:
        where = f" ({context})" if context else ""
        raise AssertionError(
            f"{actual_name} and {expected_name} disagree{where} on "
            f"{len(diffs)} metric(s):\n  " + "\n  ".join(diffs)
        )
