"""Streaming traces: re-iterable chunked views of per-thread references.

A :class:`StreamingThreadTrace` carries the same identity and summary
metadata as a materialized :class:`~repro.trace.stream.ThreadTrace`
(thread id, reference count, instruction length, write count, maximum
address) but never holds its reference columns resident: consumers pull
:class:`~repro.trace.chunks.TraceChunk` slabs from a re-iterable source
— a slice view over a materialized trace (the adapter the byte-identity
suites pin), a verified on-disk spill, or a deterministic regenerating
producer.  ``docs/STREAMING.md`` spells out the memory model and the
exactness argument; the replay engines consume these traces through the
chunk cursor seam in :mod:`repro.arch.processor` / ``repro.arch.kernel``.

Both classes advertise ``streaming = True``; materialized traces
advertise ``streaming = False`` — the engines and the static analysis
branch on that flag, nothing else, so the two representations stay
interchangeable at every call site that matters.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.trace.chunks import (
    DEFAULT_CHUNK_REFS,
    ChunkStore,
    TraceChunk,
    chunk_arrays,
)
from repro.trace.stream import ThreadTrace, TraceSet
from repro.util.validate import check_non_empty, check_positive

__all__ = [
    "StreamingThreadTrace",
    "StreamingTraceSet",
    "as_streaming",
    "spill_trace_set",
]


class StreamingThreadTrace:
    """One thread's trace as a re-iterable sequence of bounded chunks.

    Args:
        thread_id: Dense thread index within the application.
        source: Zero-argument callable returning a fresh iterator of the
            thread's chunks in order (each call restarts from the first
            chunk; chunks must be contiguous and start at reference 0).
        num_refs / length / num_writes / max_addr: Summary metadata, all
            O(1) to hold and exactly what the placement layers and the
            kernel sizing logic need without a chunk pass.
    """

    streaming = True

    __slots__ = ("thread_id", "num_refs", "length", "num_writes",
                 "max_addr", "_source", "_replay_cache")

    def __init__(self, thread_id: int,
                 source: Callable[[], Iterator[TraceChunk]], *,
                 num_refs: int, length: int, num_writes: int,
                 max_addr: int) -> None:
        if thread_id < 0:
            raise ValueError(f"thread_id must be >= 0, got {thread_id}")
        self.thread_id = int(thread_id)
        self._source = source
        self.num_refs = int(num_refs)
        self.length = int(length)
        self.num_writes = int(num_writes)
        self.max_addr = int(max_addr)
        # Small derived-data memos only (block sets, max block per bits);
        # never per-reference arrays — those would defeat streaming.
        self._replay_cache: dict | None = None

    @property
    def num_reads(self) -> int:
        return self.num_refs - self.num_writes

    def chunks(self) -> Iterator[TraceChunk]:
        """A fresh pass over the thread's chunks, first to last."""
        return iter(self._source())

    def replay_chunks(self, block_bits: int, hit_cycles: int,
                      set_mask: int) -> Iterator[tuple]:
        """Per-chunk run-compressed replay data for the fast kernel.

        Yields ``(start, compressed, charge, block_idx)`` per chunk,
        where ``compressed`` is the chunk-local
        :class:`~repro.trace.runs.CompressedTrace` and the two derived
        arrays are the kernel's charge prefix and set-index columns.
        """
        from repro.trace.runs import compress_chunk

        for chunk in self._source():
            compressed = compress_chunk(chunk, block_bits)
            yield (chunk.start, compressed,
                   compressed.charge_prefix(hit_cycles),
                   compressed.block_index(set_mask))

    def max_block(self, block_bits: int) -> int:
        """Largest block number this thread references."""
        return self.max_addr >> block_bits

    def block_set(self, block_bits: int) -> frozenset:
        """All distinct blocks the thread touches (memoized per bits).

        One streaming pass; the result is O(distinct blocks), which the
        speculation partition test needs resident anyway.
        """
        memo = self._replay_cache
        if memo is None:
            memo = self._replay_cache = {}
        key = ("block_set", block_bits)
        got = memo.get(key)
        if got is None:
            blocks: set = set()
            for chunk in self._source():
                blocks.update(np.unique(chunk.addrs >> block_bits).tolist())
            got = memo[key] = frozenset(blocks)
        return got

    def materialize(self) -> ThreadTrace:
        """Concatenate the chunks back into a materialized trace."""
        gaps, addrs, writes = [], [], []
        for chunk in self._source():
            gaps.append(chunk.gaps)
            addrs.append(chunk.addrs)
            writes.append(chunk.writes)
        if not gaps:
            empty = np.empty(0, dtype=np.int64)
            return ThreadTrace(self.thread_id, empty, empty.copy(),
                               np.empty(0, dtype=bool))
        return ThreadTrace(
            self.thread_id, np.concatenate(gaps), np.concatenate(addrs),
            np.concatenate(writes),
        )

    def __len__(self) -> int:
        return self.num_refs

    def __repr__(self) -> str:
        return (
            f"StreamingThreadTrace(thread_id={self.thread_id}, "
            f"refs={self.num_refs}, length={self.length})"
        )


class StreamingTraceSet:
    """All threads of one application, each a streaming trace.

    Mirrors the :class:`~repro.trace.stream.TraceSet` surface the
    placement and simulation layers consume (dense ids, lengths, totals,
    indexing), so the two set types are interchangeable everywhere the
    ``streaming`` flag is honoured.
    """

    streaming = True

    __slots__ = ("name", "threads")

    def __init__(self, name: str,
                 threads: Sequence[StreamingThreadTrace]) -> None:
        check_non_empty("threads", threads)
        for index, trace in enumerate(threads):
            if trace.thread_id != index:
                raise ValueError(
                    f"thread ids must be dense 0..n-1: position {index} "
                    f"holds thread_id {trace.thread_id}"
                )
        self.name = str(name)
        self.threads = list(threads)

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def thread_lengths(self) -> np.ndarray:
        return np.array([t.length for t in self.threads], dtype=np.int64)

    @property
    def total_length(self) -> int:
        return int(self.thread_lengths.sum())

    @property
    def total_refs(self) -> int:
        return sum(t.num_refs for t in self.threads)

    def __iter__(self) -> Iterator[StreamingThreadTrace]:
        return iter(self.threads)

    def __len__(self) -> int:
        return self.num_threads

    def __getitem__(self, thread_id: int) -> StreamingThreadTrace:
        return self.threads[thread_id]

    def materialize(self) -> TraceSet:
        """Concatenate every thread back into a materialized set."""
        return TraceSet(self.name, [t.materialize() for t in self.threads])

    def __repr__(self) -> str:
        return (
            f"StreamingTraceSet(name={self.name!r}, "
            f"threads={self.num_threads}, refs={self.total_refs})"
        )


def _view_source(trace: ThreadTrace,
                 chunk_refs: int) -> Callable[[], Iterator[TraceChunk]]:
    def source() -> Iterator[TraceChunk]:
        return chunk_arrays(trace.thread_id, trace.gaps, trace.addrs,
                            trace.writes, chunk_refs)
    return source


def as_streaming(trace_set: TraceSet,
                 chunk_refs: int = DEFAULT_CHUNK_REFS) -> StreamingTraceSet:
    """The materialized→streaming adapter: chunked zero-copy views.

    The returned set replays through the streaming seam while sharing
    the original arrays, so ``as_streaming(ts)`` against ``ts`` is the
    byte-identity pin the differential suites enforce.  (The adapter
    does not reduce memory — the source set stays alive — it exists to
    run the paper suite down the streaming code path and to let grid
    cells opt into streaming without a new workload builder.)
    """
    check_positive("chunk_refs", chunk_refs)
    threads = []
    for trace in trace_set:
        max_addr = int(trace.addrs.max()) if trace.num_refs else 0
        threads.append(StreamingThreadTrace(
            trace.thread_id, _view_source(trace, chunk_refs),
            num_refs=trace.num_refs, length=trace.length,
            num_writes=trace.num_writes, max_addr=max_addr,
        ))
    return StreamingTraceSet(trace_set.name, threads)


def _store_source(store: ChunkStore, thread_id: int,
                  num_chunks: int) -> Callable[[], Iterator[TraceChunk]]:
    def source() -> Iterator[TraceChunk]:
        return store.iter_thread(thread_id, num_chunks)
    return source


def stream_from_store(
    name: str,
    store: ChunkStore,
    metadata: Sequence[dict],
) -> StreamingTraceSet:
    """Assemble a streaming set over an existing spill.

    ``metadata`` holds one dict per thread (dense order) with keys
    ``num_chunks``, ``num_refs``, ``length``, ``num_writes`` and
    ``max_addr`` — exactly what :func:`spill_trace_set` (and the
    incremental generators in :mod:`repro.workload.streaming`) record
    while writing the chunks.
    """
    threads = [
        StreamingThreadTrace(
            tid, _store_source(store, tid, int(meta["num_chunks"])),
            num_refs=int(meta["num_refs"]), length=int(meta["length"]),
            num_writes=int(meta["num_writes"]),
            max_addr=int(meta["max_addr"]),
        )
        for tid, meta in enumerate(metadata)
    ]
    return StreamingTraceSet(name, threads)


__all__.append("stream_from_store")


def spill_trace_set(
    trace_set: TraceSet,
    directory,
    chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> StreamingTraceSet:
    """Spill a materialized set to a verified chunk store and return the
    disk-backed streaming set.  A failed commit (sick disk) raises — a
    spill that silently kept arrays resident would defeat the point."""
    check_positive("chunk_refs", chunk_refs)
    store = ChunkStore(directory)
    metadata = []
    for trace in trace_set:
        count = 0
        for index, chunk in enumerate(chunk_arrays(
                trace.thread_id, trace.gaps, trace.addrs, trace.writes,
                chunk_refs)):
            if not store.spill(chunk, index):
                raise OSError(
                    f"could not spill chunk {index} of thread "
                    f"{trace.thread_id} under {directory}"
                )
            count = index + 1
        metadata.append({
            "num_chunks": count,
            "num_refs": trace.num_refs,
            "length": trace.length,
            "num_writes": trace.num_writes,
            "max_addr": int(trace.addrs.max()) if trace.num_refs else 0,
        })
    return stream_from_store(trace_set.name, store, metadata)
