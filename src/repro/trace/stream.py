"""Per-thread traces and application trace sets.

Traces are stored columnar (three parallel numpy arrays) rather than as
lists of :class:`~repro.trace.record.TraceRecord` objects: the simulator
replays hundreds of thousands of references per run, and the placement
algorithms' static analysis reduces whole columns at once.  Records remain
the interchange unit at the edges (construction from generators, text I/O,
iteration in tests).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.trace.record import AccessType, TraceRecord
from repro.util.validate import check_non_empty

__all__ = ["ThreadTrace", "TraceSet"]


class ThreadTrace:
    """The complete data-reference trace of one thread.

    Attributes:
        thread_id: Dense thread index within the application (0-based).
        gaps: int64 array; non-memory instructions before each reference.
        addrs: int64 array; word address of each reference.
        writes: bool array; True where the reference is a write.
    """

    #: Materialized traces hold whole columns; the chunked counterpart in
    #: :mod:`repro.trace.streaming` advertises True and the engines
    #: branch on this flag alone.
    streaming = False

    __slots__ = ("thread_id", "gaps", "addrs", "writes", "_replay_cache")

    def __init__(
        self,
        thread_id: int,
        gaps: np.ndarray,
        addrs: np.ndarray,
        writes: np.ndarray,
    ) -> None:
        if thread_id < 0:
            raise ValueError(f"thread_id must be >= 0, got {thread_id}")
        gaps = np.ascontiguousarray(gaps, dtype=np.int64)
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        writes = np.ascontiguousarray(writes, dtype=bool)
        if not (gaps.shape == addrs.shape == writes.shape) or gaps.ndim != 1:
            raise ValueError(
                "gaps, addrs and writes must be 1-D arrays of equal length, got "
                f"{gaps.shape}, {addrs.shape}, {writes.shape}"
            )
        if gaps.size and int(gaps.min()) < 0:
            raise ValueError("gaps must be >= 0")
        if addrs.size and int(addrs.min()) < 0:
            raise ValueError("addrs must be >= 0")
        self.thread_id = int(thread_id)
        self.gaps = gaps
        self.addrs = addrs
        self.writes = writes
        # Memoized run-compression (see repro.trace.runs), keyed by
        # block_bits.  Derived data only — never serialized or compared.
        self._replay_cache: dict | None = None

    @classmethod
    def from_records(cls, thread_id: int, records: Iterable[TraceRecord]) -> "ThreadTrace":
        """Build a columnar trace from an iterable of records."""
        records = list(records)
        gaps = np.fromiter((r.gap for r in records), dtype=np.int64, count=len(records))
        addrs = np.fromiter((r.addr for r in records), dtype=np.int64, count=len(records))
        writes = np.fromiter((r.is_write for r in records), dtype=bool, count=len(records))
        return cls(thread_id, gaps, addrs, writes)

    @property
    def num_refs(self) -> int:
        """Number of data references in the trace."""
        return int(self.addrs.size)

    @property
    def length(self) -> int:
        """Thread length in instructions: every gap plus one per reference.

        This is the paper's "thread length" — the quantity LOAD-BAL
        balances.
        """
        return int(self.gaps.sum()) + self.num_refs

    @property
    def num_writes(self) -> int:
        return int(self.writes.sum())

    @property
    def num_reads(self) -> int:
        return self.num_refs - self.num_writes

    def records(self) -> Iterator[TraceRecord]:
        """Iterate the trace as records (edge/interop use only)."""
        for gap, addr, is_write in zip(self.gaps, self.addrs, self.writes):
            yield TraceRecord(int(gap), int(addr), AccessType.from_flag(bool(is_write)))

    def __len__(self) -> int:
        return self.num_refs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThreadTrace):
            return NotImplemented
        return (
            self.thread_id == other.thread_id
            and np.array_equal(self.gaps, other.gaps)
            and np.array_equal(self.addrs, other.addrs)
            and np.array_equal(self.writes, other.writes)
        )

    def __repr__(self) -> str:
        return (
            f"ThreadTrace(thread_id={self.thread_id}, refs={self.num_refs}, "
            f"length={self.length})"
        )


class TraceSet:
    """All threads of one traced application.

    Thread ids are dense: ``traces[i].thread_id == i``.  This invariant lets
    placement maps and the simulator index threads by position.
    """

    streaming = False

    __slots__ = ("name", "threads")

    def __init__(self, name: str, threads: Sequence[ThreadTrace]) -> None:
        check_non_empty("threads", threads)
        for index, trace in enumerate(threads):
            if trace.thread_id != index:
                raise ValueError(
                    f"thread ids must be dense 0..n-1: position {index} holds "
                    f"thread_id {trace.thread_id}"
                )
        self.name = str(name)
        self.threads = list(threads)

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def thread_lengths(self) -> np.ndarray:
        """Per-thread instruction lengths (the LOAD-BAL input)."""
        return np.array([t.length for t in self.threads], dtype=np.int64)

    @property
    def total_length(self) -> int:
        return int(self.thread_lengths.sum())

    @property
    def total_refs(self) -> int:
        return sum(t.num_refs for t in self.threads)

    def __iter__(self) -> Iterator[ThreadTrace]:
        return iter(self.threads)

    def __len__(self) -> int:
        return self.num_threads

    def __getitem__(self, thread_id: int) -> ThreadTrace:
        return self.threads[thread_id]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceSet):
            return NotImplemented
        return self.name == other.name and self.threads == other.threads

    def __repr__(self) -> str:
        return (
            f"TraceSet(name={self.name!r}, threads={self.num_threads}, "
            f"refs={self.total_refs})"
        )
