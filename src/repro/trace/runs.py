"""Run-length compression of thread traces for the fast replay kernel.

The paper's own result (§4.2) is that sharing is *sequential*: a thread
makes long runs of references to the same cache block between coherence
events.  A replay loop that touches the cache once per *reference* wastes
almost all of its work re-confirming hits inside those runs; a loop that
touches it once per *block run* does the same simulation in a fraction of
the time.

:func:`compress_trace` precomputes, per thread, everything the kernel in
:mod:`repro.arch.kernel` needs to replay a run in O(1):

* ``blocks`` — the per-reference block numbers (``addrs >> block_bits``);
* ``run_end[i]`` — the exclusive end of the maximal same-block run
  containing reference ``i``;
* ``next_write[i]`` — the first reference at or after ``i`` that is a
  write (``num_refs`` when none remains), so the kernel can find the one
  write per run segment that needs a real directory upgrade;
* ``prefix_gaps[i]`` — the sum of instruction gaps before reference
  ``i``, so the cycles of any hit span ``[i, j)`` are the closed form
  ``prefix_gaps[j] - prefix_gaps[i] + (j - i) * hit_cycles``.

The compression is *exact*, not approximate: a repeated same-block hit
mutates no classification state in the direct-mapped cache and leaves the
block at MRU in a set-associative one, so replaying a hit span as one
arithmetic step is bit-for-bit equivalent to stepping it (the argument is
spelled out in ``docs/PERFORMANCE.md`` and enforced by the differential
suite in ``tests/oracle/``).

Arrays are exposed as plain Python lists: the kernel indexes them
elementwise, where lists beat numpy scalar access severalfold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.stream import ThreadTrace, TraceSet

__all__ = ["CompressedTrace", "compress_trace", "compress_chunk",
           "run_length_stats"]


@dataclass
class CompressedTrace:
    """One thread's trace plus its precomputed run structure.

    All sequences are Python lists for fast scalar indexing; ``blocks``,
    ``gaps`` and ``writes`` are parallel to the original references,
    ``prefix_gaps`` has ``num_refs + 1`` entries.
    """

    thread_id: int
    gaps: list[int]
    blocks: list[int]
    writes: list[bool]
    run_end: list[int]
    next_write: list[int]
    prefix_gaps: list[int]
    num_refs: int
    num_runs: int
    blocks_np: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64),
        repr=False, compare=False,
    )
    _charge_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _index_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def charge_prefix(self, hit_cycles: int) -> list[int]:
        """``C[i] = prefix_gaps[i] + i * hit_cycles``, memoized.

        Folds the per-reference hit cost into the gap prefix sum, so the
        kernel charges any hit span ``[i, j)`` as the two-lookup form
        ``C[j] - C[i]`` with no multiply.
        """
        got = self._charge_cache.get(hit_cycles)
        if got is None:
            n = self.num_refs
            got = (
                np.asarray(self.prefix_gaps, dtype=np.int64)
                + hit_cycles * np.arange(n + 1, dtype=np.int64)
            ).tolist()
            self._charge_cache[hit_cycles] = got
        return got

    def block_index(self, mask: int) -> np.ndarray:
        """``blocks_np & mask`` (each reference's cache-set index),
        memoized per mask for the kernel's vectorized hit scan."""
        got = self._index_cache.get(mask)
        if got is None:
            got = self._index_cache[mask] = self.blocks_np & mask
        return got


def compress_trace(trace: ThreadTrace, block_bits: int) -> CompressedTrace:
    """Precompute the run structure of one thread's trace.

    Pure numpy sweeps — O(n) total, no per-reference Python work.  The
    result is memoized on the trace (keyed by ``block_bits``): traces are
    immutable once they reach the simulator — every transform in
    :mod:`repro.trace.transform` returns new ``ThreadTrace`` objects — so
    repeated cells in an experiment grid pay the compression cost once.
    """
    cache = trace._replay_cache
    if cache is None:
        cache = trace._replay_cache = {}
    cached = cache.get(block_bits)
    if cached is not None:
        return cached
    # Consult the process-global persistent cache (when configured) so
    # worker processes and successive runs share one computation per
    # trace; it falls back to _compress internally on any miss/damage.
    from repro.trace import analysis_cache

    disk = analysis_cache.active_cache()
    if disk is not None:
        compressed = disk.fetch(trace, block_bits)
    else:
        compressed = _compress(trace, block_bits)
    cache[block_bits] = compressed
    return compressed


def _run_structure(
    blocks: np.ndarray, writes: np.ndarray, gaps: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """The three derived arrays over one span of references.

    Shared by whole-trace compression and per-chunk compression: a chunk
    is simply a span whose run structure is computed in local (0-based)
    coordinates, so ``run_end``/``next_write`` never index outside the
    chunk.  Returns ``(run_end, next_write, prefix_gaps, num_runs)``.
    """
    n = blocks.size
    # Maximal same-block runs: boundaries where the block number changes.
    starts = np.flatnonzero(np.diff(blocks)) + 1
    ends = np.concatenate([starts, [n]])
    lengths = np.diff(np.concatenate([[0], ends]))
    run_end = np.repeat(ends, lengths)

    # First write at or after each position (n when no write remains).
    next_write = np.full(n, n, dtype=np.int64)
    write_idx = np.flatnonzero(writes)
    next_write[write_idx] = write_idx
    next_write = np.minimum.accumulate(next_write[::-1])[::-1]

    prefix_gaps = np.concatenate([[0], np.cumsum(gaps)])
    return run_end, next_write, prefix_gaps, len(ends)


def _compress(trace: ThreadTrace, block_bits: int) -> CompressedTrace:
    n = trace.num_refs
    blocks = trace.addrs >> block_bits
    if n == 0:
        return CompressedTrace(
            thread_id=trace.thread_id, gaps=[], blocks=[], writes=[],
            run_end=[], next_write=[], prefix_gaps=[0], num_refs=0, num_runs=0,
        )

    run_end, next_write, prefix_gaps, num_runs = _run_structure(
        blocks, trace.writes, trace.gaps)

    return CompressedTrace(
        thread_id=trace.thread_id,
        gaps=trace.gaps.tolist(),
        blocks=blocks.tolist(),
        writes=trace.writes.tolist(),
        run_end=run_end.tolist(),
        next_write=next_write.tolist(),
        prefix_gaps=prefix_gaps.tolist(),
        num_refs=n,
        num_runs=num_runs,
        blocks_np=np.ascontiguousarray(blocks, dtype=np.int64),
    )


def compress_chunk(chunk, block_bits: int) -> CompressedTrace:
    """Run-compress one :class:`~repro.trace.chunks.TraceChunk`.

    The result's arrays are chunk-local (indices ``0..num_refs``); the
    chunk's global offset lives on ``chunk.start``, not here.  Runs are
    split at chunk boundaries, which is exact: a hit span charges the
    same cycles whether charged in one piece or two, and a split run's
    second segment re-confirms residency (a no-op for a resident block)
    and re-tests its first write against the exclusive-owner pre-test
    (also a no-op once the first segment's write upgraded).  The full
    argument is in ``docs/STREAMING.md``.

    When a persistent analysis cache is configured
    (:func:`repro.trace.analysis_cache.configure`), the chunk's structure
    is fetched through it (content-addressed by the chunk's bytes) so
    repeated cells over the same spilled chunks share one computation.
    """
    from repro.trace import analysis_cache

    disk = analysis_cache.active_cache()
    if disk is not None:
        return disk.fetch_chunk(chunk, block_bits)
    return _compress_chunk(chunk, block_bits)


def _compress_chunk(chunk, block_bits: int) -> CompressedTrace:
    n = int(chunk.addrs.size)
    blocks = chunk.addrs >> block_bits
    if n == 0:
        return CompressedTrace(
            thread_id=chunk.thread_id, gaps=[], blocks=[], writes=[],
            run_end=[], next_write=[], prefix_gaps=[0], num_refs=0, num_runs=0,
        )
    run_end, next_write, prefix_gaps, num_runs = _run_structure(
        blocks, chunk.writes, chunk.gaps)
    return CompressedTrace(
        thread_id=chunk.thread_id,
        gaps=chunk.gaps.tolist(),
        blocks=blocks.tolist(),
        writes=chunk.writes.tolist(),
        run_end=run_end.tolist(),
        next_write=next_write.tolist(),
        prefix_gaps=prefix_gaps.tolist(),
        num_refs=n,
        num_runs=num_runs,
        blocks_np=np.ascontiguousarray(blocks, dtype=np.int64),
    )


def run_length_stats(trace_set: TraceSet, block_bits: int = 2) -> dict:
    """Compression diagnostics for a whole application.

    Returns total references, total block runs, and the mean run length
    (references per run) — the factor bounding the kernel's advantage.
    """
    refs = 0
    runs = 0
    for trace in trace_set:
        n = trace.num_refs
        refs += n
        if not n:
            continue
        if getattr(trace, "streaming", False):
            # Chunk-local counts, with boundary runs merged when the
            # block continues across the seam — the totals must match
            # the materialized reduction exactly (chunking is a replay
            # mechanism, never a change to the trace's run structure).
            prev_block = None
            for chunk in trace.chunks():
                blocks = chunk.addrs >> block_bits
                runs += 1 + int(np.count_nonzero(np.diff(blocks)))
                if prev_block is not None and int(blocks[0]) == prev_block:
                    runs -= 1
                prev_block = int(blocks[-1])
        else:
            blocks = trace.addrs >> block_bits
            runs += 1 + int(np.count_nonzero(np.diff(blocks)))
    return {
        "total_refs": refs,
        "total_runs": runs,
        "mean_run_length": refs / runs if runs else 0.0,
    }
