"""Trace substrate.

The paper's inputs are per-thread memory-reference traces produced by
MPtrace.  This package provides the equivalent substrate for the
reproduction:

* :mod:`repro.trace.record` — the single-reference record model;
* :mod:`repro.trace.stream` — per-thread traces and whole-application
  trace sets (columnar, numpy-backed);
* :mod:`repro.trace.io` — text and binary serialization;
* :mod:`repro.trace.runs` — run-length compression of the block stream
  (the fast replay engine's input form);
* :mod:`repro.trace.chunks` — bounded-size trace chunks and their
  verified on-disk spill format;
* :mod:`repro.trace.streaming` — chunked streaming traces/trace sets
  the replay engines consume with O(chunk) resident reference data
  (see ``docs/STREAMING.md``);
* :mod:`repro.trace.analysis_cache` — content-addressed on-disk cache of
  the run-compression artifacts, shared across processes and runs;
* :mod:`repro.trace.analysis` — the *static* per-thread analysis the
  paper's placement algorithms consume (address profiles, pairwise and
  N-way sharing, write-shared references, private address counts).
"""

from repro.trace.record import AccessType, TraceRecord
from repro.trace.runs import CompressedTrace, compress_trace, run_length_stats
from repro.trace.analysis_cache import AnalysisCache, trace_digest
from repro.trace.stream import ThreadTrace, TraceSet
from repro.trace.chunks import (
    ChunkStore,
    MissingChunkError,
    TraceChunk,
    chunk_arrays,
)
from repro.trace.streaming import (
    StreamingThreadTrace,
    StreamingTraceSet,
    as_streaming,
    spill_trace_set,
    stream_from_store,
)
from repro.trace.io import (
    load_trace_set,
    load_trace_set_text,
    save_trace_set,
    save_trace_set_text,
    trace_set_from_text,
    trace_set_to_text,
)
from repro.trace.temporal import TemporalSharingReport, analyze_temporal_sharing
from repro.trace.transform import (
    merge_trace_sets,
    remap_addresses,
    select_threads,
    truncate_traces,
)
from repro.trace.analysis import (
    ThreadProfile,
    TraceSetAnalysis,
    group_shared_references,
    pairwise_matrix,
    shared_addresses,
    shared_references,
    write_shared_references,
)

__all__ = [
    "AccessType",
    "TraceRecord",
    "ThreadTrace",
    "TraceSet",
    "CompressedTrace",
    "compress_trace",
    "run_length_stats",
    "AnalysisCache",
    "trace_digest",
    "TraceChunk",
    "ChunkStore",
    "MissingChunkError",
    "chunk_arrays",
    "StreamingThreadTrace",
    "StreamingTraceSet",
    "as_streaming",
    "spill_trace_set",
    "stream_from_store",
    "save_trace_set",
    "load_trace_set",
    "save_trace_set_text",
    "load_trace_set_text",
    "trace_set_to_text",
    "trace_set_from_text",
    "ThreadProfile",
    "TraceSetAnalysis",
    "shared_references",
    "shared_addresses",
    "write_shared_references",
    "group_shared_references",
    "pairwise_matrix",
    "TemporalSharingReport",
    "analyze_temporal_sharing",
    "truncate_traces",
    "select_threads",
    "remap_addresses",
    "merge_trace_sets",
]
