"""Temporal (dynamic) sharing analysis of trace sets.

The static analysis in :mod:`repro.trace.analysis` deliberately ignores
time — that is the paper's point about its placement algorithms' inputs.
This module measures the *temporal* properties the paper invokes when
explaining the result (§4.2):

* **write runs** — "sequences of accesses by a single thread" delimited by
  writes: the unit of migratory sharing;
* **migratory addresses** — the paper cites an analysis of its FFT showing
  "73% of all shared elements are migratory, i.e., accessed in long write
  runs";
* **sequential sharing** — "a processor accesses a shared location
  multiple times before there is contention from another processor",
  quantified here as the mean *access-run* length per shared address (how
  many consecutive references an address receives from one thread before
  another thread touches it, in an interleaved replay).

The interleaving used is a round-robin merge of the per-thread traces in
fixed-size reference quanta (threads execute in bursts, as they do on real
processors and in the simulator, not in reference-by-reference lockstep).
It is placement-free: a property of the program, not of any schedule —
which is exactly the level at which the paper argues (program
characteristics explain the placement result).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.stream import TraceSet
from repro.util.stats import Summary, summarize

__all__ = ["TemporalSharingReport", "analyze_temporal_sharing"]


@dataclass(frozen=True)
class TemporalSharingReport:
    """Temporal sharing properties of one application.

    Attributes:
        app: Application name.
        access_run_length: Summary of per-address single-thread access-run
            lengths (the paper's sequential-sharing evidence: long runs).
        write_run_length: Summary of write-run lengths (consecutive
            references by the owning thread from its first write until
            another thread intervenes).
        migratory_fraction: Fraction of shared addresses that are
            migratory: written by at least two different threads, with a
            mean write-run length of at least 2 (long write runs that move
            between threads).
        shared_addresses: Number of shared addresses analyzed.
    """

    app: str
    access_run_length: Summary
    write_run_length: Summary
    migratory_fraction: float
    shared_addresses: int

    def __str__(self) -> str:
        return (
            f"{self.app}: access runs {self.access_run_length.mean:.1f} refs, "
            f"write runs {self.write_run_length.mean:.1f} refs, "
            f"{100 * self.migratory_fraction:.0f}% of shared addresses migratory"
        )


def _interleave(
    trace_set: TraceSet, quantum: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Round-robin merge of the threads' references, quantum at a time.

    Returns (thread, addr, is_write) arrays in interleaved order: each
    living thread contributes its next ``quantum`` references per round,
    approximating concurrent execution with equal progress rates at the
    granularity threads actually run (bursts between memory stalls).
    """
    counts = np.array([t.num_refs for t in trace_set], dtype=np.int64)
    total = int(counts.sum())
    threads = np.empty(total, dtype=np.int64)
    addrs = np.empty(total, dtype=np.int64)
    writes = np.empty(total, dtype=bool)
    cursors = np.zeros(len(counts), dtype=np.int64)
    position = 0
    alive = [t for t in range(len(counts)) if counts[t] > 0]
    while alive:
        next_alive = []
        for tid in alive:
            start = int(cursors[tid])
            stop = min(start + quantum, int(counts[tid]))
            n = stop - start
            trace = trace_set[tid]
            threads[position:position + n] = tid
            addrs[position:position + n] = trace.addrs[start:stop]
            writes[position:position + n] = trace.writes[start:stop]
            position += n
            cursors[tid] = stop
            if stop < counts[tid]:
                next_alive.append(tid)
        alive = next_alive
    return threads, addrs, writes


def analyze_temporal_sharing(
    trace_set: TraceSet, *, max_addresses: int = 4096, quantum: int = 64
) -> TemporalSharingReport:
    """Measure write runs, access runs and the migratory fraction.

    Args:
        trace_set: The application's traces.
        max_addresses: Cap on shared addresses analyzed (the busiest are
            kept) so the analysis stays linear for huge traces.
        quantum: References per thread per interleave round (the execution
            burst size; 64 approximates the simulator's hit runs between
            context switches).
    """
    threads, addrs, writes = _interleave(trace_set, quantum)

    # Shared addresses: touched by >= 2 threads.
    order = np.lexsort((threads, addrs))
    sorted_addrs, sorted_threads = addrs[order], threads[order]
    unique_addrs, starts = np.unique(sorted_addrs, return_index=True)
    shared: set[int] = set()
    boundaries = list(starts) + [len(sorted_addrs)]
    for i, addr in enumerate(unique_addrs):
        segment = sorted_threads[boundaries[i]:boundaries[i + 1]]
        if segment.min() != segment.max():
            shared.add(int(addr))
    if not shared:
        empty = summarize([0.0])
        return TemporalSharingReport(trace_set.name, empty, empty, 0.0, 0)

    if len(shared) > max_addresses:
        counts = {a: 0 for a in shared}
        for addr in addrs:
            a = int(addr)
            if a in counts:
                counts[a] += 1
        shared = set(sorted(counts, key=counts.get, reverse=True)[:max_addresses])

    # Per shared address, walk the interleaved stream: access runs break
    # on any thread change; write runs start at a write and end when a
    # different thread touches the address.
    last_thread: dict[int, int] = {}
    run_length: dict[int, int] = {}
    access_runs: list[int] = []
    write_runs: list[int] = []
    writer_sets: dict[int, set[int]] = {a: set() for a in shared}
    in_write_run: dict[int, bool] = {}
    write_run_length: dict[int, int] = {}

    for tid, addr, is_write in zip(threads, addrs, writes):
        a = int(addr)
        if a not in shared:
            continue
        tid = int(tid)
        if a in last_thread and last_thread[a] == tid:
            run_length[a] += 1
            if in_write_run.get(a):
                write_run_length[a] += 1
        else:
            if a in run_length:
                access_runs.append(run_length[a])
            if in_write_run.get(a):
                write_runs.append(write_run_length[a])
                in_write_run[a] = False
            last_thread[a] = tid
            run_length[a] = 1
        if is_write:
            writer_sets[a].add(tid)
            if not in_write_run.get(a):
                in_write_run[a] = True
                write_run_length[a] = 1
    access_runs.extend(run_length.values())
    write_runs.extend(
        write_run_length[a] for a, active in in_write_run.items() if active
    )

    # Migratory: written by >= 2 threads in multi-reference write runs.
    migratory = 0
    for a in shared:
        if len(writer_sets[a]) >= 2:
            migratory += 1
    migratory_fraction = migratory / len(shared)

    return TemporalSharingReport(
        app=trace_set.name,
        access_run_length=summarize(access_runs or [0.0]),
        write_run_length=summarize(write_runs or [0.0]),
        migratory_fraction=migratory_fraction,
        shared_addresses=len(shared),
    )
