"""Trace serialization.

Two formats:

* **Binary** (``.npz``): the columnar arrays, verbatim.  Compact and fast;
  the default for experiment caching.
* **Text**: one record per line, ``<thread> <gap> <R|W> <addr>``, preceded by
  a header.  Human-inspectable and diff-able; the format examples and tests
  use to show what a trace *is*.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.trace.stream import ThreadTrace, TraceSet
from repro.util.atomicio import atomic_write_bytes, atomic_write_text

__all__ = [
    "save_trace_set",
    "load_trace_set",
    "save_trace_set_text",
    "load_trace_set_text",
]

_TEXT_MAGIC = "# repro-trace v1"


def save_trace_set(trace_set: TraceSet, path: str | Path) -> None:
    """Save a trace set as a compressed ``.npz`` archive (atomically: a
    crashed or disk-full write never leaves a torn archive behind)."""
    arrays: dict[str, np.ndarray] = {}
    for trace in trace_set:
        arrays[f"gaps_{trace.thread_id}"] = trace.gaps
        arrays[f"addrs_{trace.thread_id}"] = trace.addrs
        arrays[f"writes_{trace.thread_id}"] = trace.writes
    arrays["_meta_num_threads"] = np.array([trace_set.num_threads])
    arrays["_meta_name"] = np.array([trace_set.name])
    path = Path(path)
    if not path.name.endswith(".npz"):
        # np.savez_compressed appends the extension; keep that contract.
        path = path.with_name(path.name + ".npz")
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue())


def load_trace_set(path: str | Path) -> TraceSet:
    """Load a trace set saved by :func:`save_trace_set`."""
    with np.load(Path(path), allow_pickle=False) as data:
        num_threads = int(data["_meta_num_threads"][0])
        name = str(data["_meta_name"][0])
        threads = [
            ThreadTrace(
                thread_id=tid,
                gaps=data[f"gaps_{tid}"],
                addrs=data[f"addrs_{tid}"],
                writes=data[f"writes_{tid}"],
            )
            for tid in range(num_threads)
        ]
    return TraceSet(name, threads)


def _write_text(trace_set: TraceSet, stream: TextIO) -> None:
    stream.write(f"{_TEXT_MAGIC}\n")
    stream.write(f"# name: {trace_set.name}\n")
    stream.write(f"# threads: {trace_set.num_threads}\n")
    for trace in trace_set:
        for gap, addr, is_write in zip(trace.gaps, trace.addrs, trace.writes):
            kind = "W" if is_write else "R"
            stream.write(f"{trace.thread_id} {int(gap)} {kind} {int(addr)}\n")


def save_trace_set_text(trace_set: TraceSet, path: str | Path) -> None:
    """Save a trace set in the line-per-record text format (atomically)."""
    buffer = io.StringIO()
    _write_text(trace_set, buffer)
    atomic_write_text(Path(path), buffer.getvalue(), encoding="ascii")


def trace_set_to_text(trace_set: TraceSet) -> str:
    """Render a trace set to the text format as a string (for tests/demos)."""
    buffer = io.StringIO()
    _write_text(trace_set, buffer)
    return buffer.getvalue()


def _parse_text(stream: TextIO) -> TraceSet:
    magic = stream.readline().rstrip("\n")
    if magic != _TEXT_MAGIC:
        raise ValueError(f"not a repro trace file (bad magic line {magic!r})")
    name_line = stream.readline().rstrip("\n")
    threads_line = stream.readline().rstrip("\n")
    if not name_line.startswith("# name: ") or not threads_line.startswith("# threads: "):
        raise ValueError("malformed trace header")
    name = name_line[len("# name: "):]
    num_threads = int(threads_line[len("# threads: "):])
    if num_threads <= 0:
        raise ValueError(f"header declares {num_threads} threads")

    per_thread: list[list[tuple[int, int, bool]]] = [[] for _ in range(num_threads)]
    for line_no, line in enumerate(stream, start=4):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4 or parts[2] not in ("R", "W"):
            raise ValueError(f"malformed trace record at line {line_no}: {line!r}")
        tid, gap, kind, addr = int(parts[0]), int(parts[1]), parts[2], int(parts[3])
        if not 0 <= tid < num_threads:
            raise ValueError(f"record at line {line_no} names unknown thread {tid}")
        per_thread[tid].append((gap, addr, kind == "W"))

    threads = []
    for tid, rows in enumerate(per_thread):
        gaps = np.array([r[0] for r in rows], dtype=np.int64)
        addrs = np.array([r[1] for r in rows], dtype=np.int64)
        writes = np.array([r[2] for r in rows], dtype=bool)
        threads.append(ThreadTrace(tid, gaps, addrs, writes))
    return TraceSet(name, threads)


def load_trace_set_text(path: str | Path) -> TraceSet:
    """Load a trace set from the line-per-record text format."""
    with open(Path(path), "r", encoding="ascii") as stream:
        return _parse_text(stream)


def trace_set_from_text(text: str) -> TraceSet:
    """Parse the text format from a string (for tests/demos)."""
    return _parse_text(io.StringIO(text))
