"""Static per-thread trace analysis.

This module is the reproduction of the paper's *static* measurement pass:
"Traces of the programs were statically analyzed on a per-thread basis for
characteristics that provided cluster-combining criteria" (§3.1).  Nothing
here is temporal — exactly as in the paper, the analysis sees only per-thread
reference *counts* per address, which is precisely why (the paper shows) its
sharing metrics overstate runtime coherence traffic by orders of magnitude.

Definitions (all per the paper):

* An address is **shared** if at least two threads of the application
  reference it; otherwise it is **private** to its single referencing
  thread.  Addresses are counted at word granularity ("we count distinct
  addresses rather than cache lines", §3.1 footnote), so false sharing is
  excluded by construction.
* ``shared_references(a, b)`` — the SHARE-REFS metric: the number of
  references made by threads *a* and *b* to their common addresses.
* ``write_shared_references(a, b)`` — the MAX-WRITES metric: references by
  the pair to common addresses that at least one of the pair writes.
* ``group_shared_references(group)`` — N-way sharing: references by group
  members to addresses shared by at least two group members.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

from repro.trace.stream import ThreadTrace, TraceSet
from repro.util.stats import Summary, summarize

__all__ = [
    "ThreadProfile",
    "shared_references",
    "shared_addresses",
    "write_shared_references",
    "group_shared_references",
    "pairwise_matrix",
    "TraceSetAnalysis",
]


@dataclass(frozen=True)
class ThreadProfile:
    """Per-thread address profile: reference counts per distinct address.

    Attributes:
        thread_id: The thread this profile describes.
        addrs: Sorted distinct word addresses the thread references.
        reads: Read count per address (parallel to ``addrs``).
        writes: Write count per address (parallel to ``addrs``).
        length: Thread length in instructions (gaps + references).
    """

    thread_id: int
    addrs: np.ndarray
    reads: np.ndarray
    writes: np.ndarray
    length: int

    @classmethod
    def from_trace(cls, trace: ThreadTrace) -> "ThreadProfile":
        """Reduce a trace to its address profile.

        Streaming traces are reduced chunk by chunk: each chunk's
        per-address counts are merged into the running sorted-unique
        profile, which is exactly the whole-column reduction (integer
        counts commute over any partition of the references), while only
        one chunk plus the profile — O(distinct addresses), the output's
        own size — stays resident.
        """
        if trace.num_refs == 0:
            empty = np.array([], dtype=np.int64)
            return cls(trace.thread_id, empty, empty.copy(), empty.copy(), trace.length)
        if getattr(trace, "streaming", False):
            addrs = np.empty(0, dtype=np.int64)
            reads = np.empty(0, dtype=np.int64)
            writes = np.empty(0, dtype=np.int64)
            for chunk in trace.chunks():
                c_addrs, inverse = np.unique(chunk.addrs, return_inverse=True)
                c_writes = np.bincount(
                    inverse, weights=chunk.writes, minlength=c_addrs.size
                ).astype(np.int64)
                c_totals = np.bincount(inverse, minlength=c_addrs.size)
                c_reads = c_totals.astype(np.int64) - c_writes
                merged, inv = np.unique(
                    np.concatenate([addrs, c_addrs]), return_inverse=True)
                new_reads = np.zeros(merged.size, dtype=np.int64)
                new_writes = np.zeros(merged.size, dtype=np.int64)
                np.add.at(new_reads, inv[:addrs.size], reads)
                np.add.at(new_reads, inv[addrs.size:], c_reads)
                np.add.at(new_writes, inv[:addrs.size], writes)
                np.add.at(new_writes, inv[addrs.size:], c_writes)
                addrs, reads, writes = merged, new_reads, new_writes
            return cls(trace.thread_id, addrs, reads, writes, trace.length)
        addrs, inverse = np.unique(trace.addrs, return_inverse=True)
        writes = np.bincount(inverse, weights=trace.writes, minlength=addrs.size)
        totals = np.bincount(inverse, minlength=addrs.size)
        writes = writes.astype(np.int64)
        reads = totals.astype(np.int64) - writes
        return cls(trace.thread_id, addrs, reads, writes, trace.length)

    @cached_property
    def totals(self) -> np.ndarray:
        """Total references per address (reads + writes)."""
        return self.reads + self.writes

    @property
    def num_addresses(self) -> int:
        return int(self.addrs.size)

    @property
    def total_refs(self) -> int:
        return int(self.totals.sum())

    @cached_property
    def written_addrs(self) -> np.ndarray:
        """Sorted distinct addresses this thread writes at least once."""
        return self.addrs[self.writes > 0]

    def refs_to(self, addresses: np.ndarray) -> int:
        """Total references by this thread to the given sorted addresses."""
        mask = np.isin(self.addrs, addresses, assume_unique=False)
        return int(self.totals[mask].sum())


def _common(a: ThreadProfile, b: ThreadProfile) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Indices into each profile for their common addresses."""
    common, idx_a, idx_b = np.intersect1d(
        a.addrs, b.addrs, assume_unique=True, return_indices=True
    )
    return common, idx_a, idx_b


def shared_references(a: ThreadProfile, b: ThreadProfile) -> int:
    """References by the pair to their common addresses (SHARE-REFS metric)."""
    _, idx_a, idx_b = _common(a, b)
    return int(a.totals[idx_a].sum() + b.totals[idx_b].sum())


def shared_addresses(a: ThreadProfile, b: ThreadProfile) -> int:
    """Number of distinct addresses the pair has in common."""
    common, _, _ = _common(a, b)
    return int(common.size)


def write_shared_references(a: ThreadProfile, b: ThreadProfile) -> int:
    """Pair references to common addresses that at least one of them writes.

    Read-shared data never causes invalidations, so MAX-WRITES restricts the
    SHARE-REFS metric to write-shared addresses (§2, item 5).
    """
    _, idx_a, idx_b = _common(a, b)
    written = (a.writes[idx_a] > 0) | (b.writes[idx_b] > 0)
    return int(a.totals[idx_a][written].sum() + b.totals[idx_b][written].sum())


def group_shared_references(profiles: Sequence[ThreadProfile]) -> int:
    """N-way sharing: group references to addresses >= 2 group members touch.

    This generalizes pairwise sharing to a whole cluster and is the quantity
    Table 2 reports for the "maximum threads per processor" extreme.
    """
    if len(profiles) < 2:
        return 0
    all_addrs = np.concatenate([p.addrs for p in profiles])
    unique, counts = np.unique(all_addrs, return_counts=True)
    shared = unique[counts >= 2]
    if shared.size == 0:
        return 0
    return sum(p.refs_to(shared) for p in profiles)


def pairwise_matrix(
    profiles: Sequence[ThreadProfile],
    metric: Callable[[ThreadProfile, ThreadProfile], float],
) -> np.ndarray:
    """Symmetric matrix of a pairwise metric over all thread pairs.

    The diagonal is zero: a thread does not share with itself in any of the
    paper's metrics.
    """
    n = len(profiles)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            value = float(metric(profiles[i], profiles[j]))
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix


class TraceSetAnalysis:
    """All static characteristics of one application's trace set.

    One instance per application; every derived quantity is computed lazily
    and cached, so the placement algorithms and Table 2 can share the same
    analysis without recomputation.
    """

    def __init__(self, trace_set: TraceSet) -> None:
        self.trace_set = trace_set
        self.profiles = [ThreadProfile.from_trace(t) for t in trace_set]

    @property
    def num_threads(self) -> int:
        return len(self.profiles)

    # ------------------------------------------------------------------
    # Global address classification
    # ------------------------------------------------------------------

    @cached_property
    def _address_sharer_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted distinct addresses, number of threads touching each)."""
        all_addrs = np.concatenate([p.addrs for p in self.profiles])
        return np.unique(all_addrs, return_counts=True)

    @cached_property
    def shared_address_space(self) -> np.ndarray:
        """Sorted addresses referenced by at least two threads."""
        unique, counts = self._address_sharer_counts
        return unique[counts >= 2]

    @cached_property
    def private_address_space(self) -> np.ndarray:
        """Sorted addresses referenced by exactly one thread."""
        unique, counts = self._address_sharer_counts
        return unique[counts == 1]

    # ------------------------------------------------------------------
    # Per-thread characteristics
    # ------------------------------------------------------------------

    @cached_property
    def shared_refs_per_thread(self) -> np.ndarray:
        """References by each thread into the shared address space."""
        shared = self.shared_address_space
        return np.array([p.refs_to(shared) for p in self.profiles], dtype=np.int64)

    @cached_property
    def private_addresses_per_thread(self) -> np.ndarray:
        """Distinct private addresses per thread (the MIN-PRIV input)."""
        shared = self.shared_address_space
        return np.array(
            [p.num_addresses - int(np.isin(p.addrs, shared).sum()) for p in self.profiles],
            dtype=np.int64,
        )

    @cached_property
    def percent_shared_refs(self) -> Summary:
        """Per-thread percentage of references that touch shared addresses.

        Table 2's "Shared Refs" column (mean over all threads).
        """
        totals = np.array([max(p.total_refs, 1) for p in self.profiles], dtype=float)
        return summarize(100.0 * self.shared_refs_per_thread / totals)

    @cached_property
    def refs_per_shared_address(self) -> Summary:
        """Per-thread references per distinct shared address touched.

        Table 2's "References per shared address" — the temporal-locality
        proxy SHARE-ADDR exploits.
        """
        shared = self.shared_address_space
        values = []
        for profile, refs in zip(self.profiles, self.shared_refs_per_thread):
            touched = int(np.isin(profile.addrs, shared).sum())
            values.append(refs / touched if touched else 0.0)
        return summarize(values)

    @cached_property
    def thread_lengths(self) -> Summary:
        """Thread length in instructions — Table 2's final column."""
        return summarize([float(p.length) for p in self.profiles])

    # ------------------------------------------------------------------
    # Pairwise and N-way sharing
    # ------------------------------------------------------------------

    @cached_property
    def shared_refs_matrix(self) -> np.ndarray:
        """Pairwise SHARE-REFS metric matrix."""
        return pairwise_matrix(self.profiles, shared_references)

    @cached_property
    def shared_addrs_matrix(self) -> np.ndarray:
        """Pairwise count of common addresses."""
        return pairwise_matrix(self.profiles, shared_addresses)

    @cached_property
    def write_shared_refs_matrix(self) -> np.ndarray:
        """Pairwise MAX-WRITES metric matrix."""
        return pairwise_matrix(self.profiles, write_shared_references)

    @cached_property
    def pairwise_sharing(self) -> Summary:
        """Summary of pairwise shared references over all thread pairs."""
        n = self.num_threads
        if n < 2:
            return summarize([0.0])
        upper = self.shared_refs_matrix[np.triu_indices(n, k=1)]
        return summarize(upper)

    def n_way_sharing(
        self, group_size: int, *, samples: int = 16, seed: int = 0
    ) -> Summary:
        """Sharing within random balanced groups of ``group_size`` threads.

        Table 2's "N-way sharing" column reports inter-thread sharing at the
        maximum-threads-per-processor extreme (a two-processor machine, so
        groups of ``t/2`` threads).  The paper averages over placements; we
        sample random thread-balanced groups.
        """
        if not 2 <= group_size <= self.num_threads:
            raise ValueError(
                f"group_size must be in [2, {self.num_threads}], got {group_size}"
            )
        rng = np.random.default_rng(seed)
        values = []
        ids = np.arange(self.num_threads)
        for _ in range(samples):
            chosen = rng.choice(ids, size=group_size, replace=False)
            values.append(group_shared_references([self.profiles[i] for i in chosen]))
        return summarize(values)
