"""Persistent, content-addressed cache of trace run-compression artifacts.

:func:`~repro.trace.runs.compress_trace` memoizes per process, so within
one process each (trace, block size) pays the analysis sweeps once.  But a
grid run spreads hundreds of cells over worker processes, and successive
runs start cold — every process recomputes every trace.  The analysis is
*placement-invariant*: it depends only on the trace bytes and the block
size, never on which processor a thread runs on.  This module gives it a
content-addressed on-disk form so all cells of a suite, across worker
processes and across runs, compute each trace's analysis exactly once.

**Key.**  ``sha256`` over the canonical trace encoding — a version tag,
the thread id, and the raw little-endian bytes of the ``gaps``/``addrs``/
``writes`` arrays — plus the block size:  entry ``{digest}-b{bits}.npz``.
The digest is memoized on the trace object (traces are immutable once they
reach the simulator), so hashing is paid once per trace per process.

**Payload.**  Only the derived structure is stored (``run_end``,
``next_write``, ``prefix_gaps`` — the parts built by O(n) numpy sweeps);
``gaps``/``blocks``/``writes`` are rebuilt from the trace the caller
already holds, keeping entries small and making a key collision harmless.

**Durability.**  Entries go through
:class:`~repro.util.verified_store.VerifiedDirectory` — atomic commits,
sha256 sidecars, verify-on-load — with fault site ``analysis``, so the
chaos grammar (``corrupt:analysis`` …) can strike them and the
evict-and-recompute contract is testable.  A damaged or missing cache
never changes results: every path falls back to computing.

**Stampede control.**  When many processes want the same missing entry
(a cold grid run fanning out), a best-effort ``.lock`` file elects one
computer; the rest poll briefly and load its committed entry.  The lock
is advisory and crash-safe: a dead holder's lock (stale pid) is broken,
and a timeout degrades to just-compute-it — coordination can reduce
duplicate work, never block progress.
"""

from __future__ import annotations

import hashlib
import io
import logging
import os
import threading
import time
import zipfile
from pathlib import Path

import numpy as np

from repro.trace.runs import CompressedTrace, _compress, _compress_chunk
from repro.trace.stream import ThreadTrace
from repro.util.verified_store import VerifiedDirectory

__all__ = [
    "AnalysisCache",
    "active_cache",
    "chunk_digest",
    "configure",
    "trace_digest",
]

log = logging.getLogger(__name__)

#: Version tag folded into every digest and payload; bump on any change
#: to the canonical encoding or the stored arrays.
FORMAT_VERSION = 1
_DIGEST_TAG = b"repro-analysis/v1"
_CHUNK_DIGEST_TAG = b"repro-analysis-chunk/v1"

#: Everything a damaged ``.npz`` can raise while being decoded.
_LOAD_ERRORS = (OSError, EOFError, KeyError, ValueError, zipfile.BadZipFile)

# Process-global active cache (None = disabled, the default).  Configured
# by the experiment runner when it has a cache directory, and by engine
# workers from their job payload.
_active: AnalysisCache | None = None


def configure(directory: str | os.PathLike | None) -> AnalysisCache | None:
    """Install (or disable, with None) the process-global analysis cache.

    Idempotent per directory: reconfiguring with the path already active
    keeps the existing instance and its counters.
    """
    global _active
    if directory is None:
        _active = None
        return None
    directory = Path(directory)
    if _active is not None and _active.directory == directory:
        return _active
    _active = AnalysisCache(directory)
    return _active


def active_cache() -> AnalysisCache | None:
    """The process-global analysis cache, or None when disabled."""
    return _active


def trace_digest(trace: ThreadTrace) -> str:
    """The SHA-256 content address of one thread trace (32 hex chars).

    Canonical encoding: version tag, thread id, reference count, then the
    raw little-endian bytes of the gap, address and write arrays.  Memoized
    on the trace's replay cache (string key — the run-compression memos use
    integer ``block_bits`` keys, so the namespaces cannot collide).
    """
    cache = trace._replay_cache
    if cache is None:
        cache = trace._replay_cache = {}
    digest = cache.get("digest")
    if digest is None:
        hasher = hashlib.sha256()
        hasher.update(_DIGEST_TAG)
        hasher.update(f":{trace.thread_id}:{trace.num_refs}:".encode())
        hasher.update(np.ascontiguousarray(trace.gaps, dtype="<i8").tobytes())
        hasher.update(np.ascontiguousarray(trace.addrs, dtype="<i8").tobytes())
        hasher.update(np.ascontiguousarray(trace.writes, dtype="u1").tobytes())
        digest = cache["digest"] = hasher.hexdigest()[:32]
    return digest


def chunk_digest(chunk) -> str:
    """The SHA-256 content address of one trace chunk (32 hex chars).

    Same canonical encoding as :func:`trace_digest` under a distinct
    version tag, with the chunk's position (thread id, start offset,
    reference count) folded in, so a whole trace and a chunk covering it
    can never collide.  Chunks are transient objects (streaming replay
    drops each after use), so nothing is memoized here.
    """
    hasher = hashlib.sha256()
    hasher.update(_CHUNK_DIGEST_TAG)
    hasher.update(f":{chunk.thread_id}:{chunk.start}:{chunk.num_refs}:".encode())
    hasher.update(np.ascontiguousarray(chunk.gaps, dtype="<i8").tobytes())
    hasher.update(np.ascontiguousarray(chunk.addrs, dtype="<i8").tobytes())
    hasher.update(np.ascontiguousarray(chunk.writes, dtype="u1").tobytes())
    return hasher.hexdigest()[:32]


def _entry_name(trace: ThreadTrace, block_bits: int) -> str:
    return f"{trace_digest(trace)}-b{block_bits}.npz"


def _encode(compressed: CompressedTrace) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        scalars=np.array(
            [FORMAT_VERSION, compressed.num_refs, compressed.num_runs],
            dtype=np.int64,
        ),
        run_end=np.asarray(compressed.run_end, dtype=np.int64),
        next_write=np.asarray(compressed.next_write, dtype=np.int64),
        prefix_gaps=np.asarray(compressed.prefix_gaps, dtype=np.int64),
    )
    return buffer.getvalue()


def _decode_payload(data: bytes, expected_refs: int):
    """Parse an entry's derived arrays, validating format and shape.

    Any inconsistency with the reference stream in hand (stale format,
    wrong reference count) raises ValueError, which callers treat as
    damage.
    """
    with np.load(io.BytesIO(data), allow_pickle=False) as arrays:
        scalars = arrays["scalars"]
        version = int(scalars[0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported analysis format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        num_refs = int(scalars[1])
        num_runs = int(scalars[2])
        run_end = arrays["run_end"].tolist()
        next_write = arrays["next_write"].tolist()
        prefix_gaps = arrays["prefix_gaps"].tolist()
    n = expected_refs
    if (num_refs != n or len(run_end) != n or len(next_write) != n
            or len(prefix_gaps) != n + 1):
        raise ValueError(
            f"analysis entry shape mismatch (entry num_refs={num_refs}, "
            f"expected num_refs={n})"
        )
    return run_end, next_write, prefix_gaps, num_runs


def _decode(data: bytes, trace: ThreadTrace, block_bits: int) -> CompressedTrace:
    """Rebuild a :class:`CompressedTrace` from a cache entry.

    The placement-invariant derived arrays come from the entry; the
    reference streams (``gaps``/``blocks``/``writes``) are rebuilt from
    the trace itself — a cheap shift and three list conversions.
    """
    run_end, next_write, prefix_gaps, num_runs = _decode_payload(
        data, trace.num_refs)
    blocks = trace.addrs >> block_bits
    return CompressedTrace(
        thread_id=trace.thread_id,
        gaps=trace.gaps.tolist(),
        blocks=blocks.tolist(),
        writes=trace.writes.tolist(),
        run_end=run_end,
        next_write=next_write,
        prefix_gaps=prefix_gaps,
        num_refs=trace.num_refs,
        num_runs=num_runs,
        blocks_np=np.ascontiguousarray(blocks, dtype=np.int64),
    )


def _decode_chunk(data: bytes, chunk, block_bits: int) -> CompressedTrace:
    """Rebuild one chunk's :class:`CompressedTrace` from a cache entry."""
    run_end, next_write, prefix_gaps, num_runs = _decode_payload(
        data, chunk.num_refs)
    blocks = chunk.addrs >> block_bits
    return CompressedTrace(
        thread_id=chunk.thread_id,
        gaps=chunk.gaps.tolist(),
        blocks=blocks.tolist(),
        writes=chunk.writes.tolist(),
        run_end=run_end,
        next_write=next_write,
        prefix_gaps=prefix_gaps,
        num_refs=chunk.num_refs,
        num_runs=num_runs,
        blocks_np=np.ascontiguousarray(blocks, dtype=np.int64),
    )


class AnalysisCache:
    """On-disk run-compression entries under one directory.

    ``hits``/``misses``/``waited`` count this process's outcomes (a
    ``waited`` fetch loaded an entry another process committed while we
    polled its lock); they feed the speculation benchmark, not results.
    """

    #: How long a fetch will poll a peer's lock before computing anyway.
    WAIT_TIMEOUT = 10.0
    _POLL_INTERVAL = 0.01

    def __init__(self, directory: str | os.PathLike) -> None:
        self._entries = VerifiedDirectory(
            directory, fault_site="analysis", logger=log,
        )
        self.hits = 0
        self.misses = 0
        self.waited = 0

    @property
    def directory(self) -> Path:
        return self._entries.directory

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz"))

    # -- fetch -----------------------------------------------------------

    def fetch(self, trace: ThreadTrace, block_bits: int) -> CompressedTrace:
        """The trace's analysis — loaded if cached, else computed + stored.

        On a miss, a ``.lock`` file elects one computing process per
        entry; concurrent fetchers of the same entry poll for the
        winner's commit instead of recomputing (single-computation
        semantics across a worker fleet).  Every failure mode — damaged
        entry, dead lock holder, full disk, poll timeout — degrades to
        computing locally; this method cannot fail.
        """
        name = _entry_name(trace, block_bits)
        got = self._load(name, trace, block_bits)
        if got is not None:
            self.hits += 1
            return got
        lock = self.directory / (name + ".lock")
        acquired = self._acquire(lock)
        try:
            if not acquired:
                got = self._await_peer(lock, name, trace, block_bits)
                if got is not None:
                    self.waited += 1
                    return got
                acquired = self._acquire(lock)
            self.misses += 1
            compressed = _compress(trace, block_bits)
            self._entries.commit(name, _encode(compressed))
            return compressed
        finally:
            if acquired:
                try:
                    lock.unlink()
                except OSError:  # pragma: no cover - already broken/stolen
                    pass

    def _load(self, name: str, trace: ThreadTrace,
              block_bits: int) -> CompressedTrace | None:
        return self._entries.load(
            name, lambda data: _decode(data, trace, block_bits),
            errors=_LOAD_ERRORS, describe="trace analysis",
        )

    def fetch_chunk(self, chunk, block_bits: int) -> CompressedTrace:
        """One chunk's analysis — loaded if cached, else computed + stored.

        Unlike :meth:`fetch` there is no lock ceremony: a chunk's
        analysis is O(chunk) and a streaming replay touches thousands of
        them, so duplicate computation across workers costs less than
        per-chunk lock traffic would.  Damage and store failures degrade
        to computing, exactly like whole-trace entries.
        """
        name = f"{chunk_digest(chunk)}-b{block_bits}.npz"
        got = self._entries.load(
            name, lambda data: _decode_chunk(data, chunk, block_bits),
            errors=_LOAD_ERRORS, describe="chunk analysis",
        )
        if got is not None:
            self.hits += 1
            return got
        self.misses += 1
        compressed = _compress_chunk(chunk, block_bits)
        self._entries.commit(name, _encode(compressed))
        return compressed

    # -- advisory locking ------------------------------------------------

    def _acquire(self, lock: Path) -> bool:
        """Try to take the entry's compute lock (never blocks)."""
        try:
            fd = os.open(lock, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        except OSError:
            # Unwritable cache volume: skip coordination, just compute.
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        return True

    @staticmethod
    def _holder_is_dead(lock: Path) -> bool:
        """Best-effort staleness check on a peer's lock file."""
        try:
            pid = int(lock.read_text(encoding="ascii").strip() or "0")
        except (OSError, ValueError):
            return False  # mid-write or already gone; let the poll decide
        if pid <= 0:
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            return False
        return False

    def _takeover(self, lock: Path) -> bool:
        """Atomically break a dead holder's lock; True when we broke it.

        A bare ``unlink`` here races: two waiters can both observe the
        same stale pid, the first unlink breaks the stale lock, a third
        process acquires a *fresh* lock, and the second unlink then
        destroys the live holder's lock — two computers elected at once
        and a healthy lock gone.  Renaming the lock to a waiter-private
        name first makes the takeover atomic: exactly one rename
        succeeds, and only the winner may remove the captured file.  The
        deadness check is repeated on the captured file (the holder may
        have released and a live peer re-acquired between our read and
        the rename); a live capture is renamed straight back.  Every
        failure mode degrades to "not broken" — the caller keeps polling
        or computes locally, never blocks.
        """
        if not self._holder_is_dead(lock):
            return False
        claim = lock.with_name(
            f"{lock.name}.stale-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            os.rename(lock, claim)
        except OSError:
            return False  # another waiter won the takeover, or it vanished
        if self._holder_is_dead(claim):
            try:
                claim.unlink()
            except OSError:  # pragma: no cover - unwritable volume
                pass
            return True
        # Captured a live peer's lock after all: hand it straight back.
        try:
            os.rename(claim, lock)
        except OSError:  # pragma: no cover - unwritable volume
            pass
        return False

    def _await_peer(self, lock: Path, name: str, trace: ThreadTrace,
                    block_bits: int) -> CompressedTrace | None:
        """Poll a peer's in-flight computation; None means compute locally.

        Returns the entry as soon as the peer commits it.  A vanished or
        stale lock (dead pid, taken over atomically by exactly one
        waiter), a peer that released without committing (its store
        failed), or the timeout all hand computation back to the caller.
        """
        deadline = time.monotonic() + self.WAIT_TIMEOUT
        while time.monotonic() < deadline:
            got = self._load(name, trace, block_bits)
            if got is not None:
                return got
            if not lock.exists():
                return None
            if self._takeover(lock):
                return None
            time.sleep(self._POLL_INTERVAL)
        log.warning(
            "timed out waiting on analysis lock %s; computing locally",
            lock.name,
        )
        return None
