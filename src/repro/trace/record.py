"""The single-reference trace record.

A thread's trace is a sequence of *data references*, each annotated with the
number of non-memory instructions (``gap``) the thread executed since its
previous data reference.  This is the standard compressed representation of
an address trace: replaying a record costs ``gap`` execution cycles followed
by one cache access.

The paper's MPtrace traces contain instruction fetches as well; we fold them
into ``gap`` because the paper's four cache-miss components (compulsory,
intra-/inter-thread conflict, invalidation) are all *data*-miss components
and instruction footprints cannot differentiate thread placements (see
DESIGN.md, substitution table).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AccessType", "TraceRecord"]


class AccessType(enum.Enum):
    """Kind of data reference."""

    READ = "R"
    WRITE = "W"

    @classmethod
    def from_flag(cls, is_write: bool) -> "AccessType":
        return cls.WRITE if is_write else cls.READ

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One data reference in a thread's trace.

    Attributes:
        gap: Non-memory instructions executed before this reference (>= 0).
        addr: Word address referenced (>= 0).  Addresses are word-granular;
            the cache model converts them to block addresses.
        access: Whether the reference reads or writes the address.
    """

    gap: int
    addr: int
    access: AccessType

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError(f"gap must be >= 0, got {self.gap}")
        if self.addr < 0:
            raise ValueError(f"addr must be >= 0, got {self.addr}")

    @property
    def is_write(self) -> bool:
        return self.access.is_write

    @property
    def cost_in_instructions(self) -> int:
        """Instructions this record represents: the gap plus the reference."""
        return self.gap + 1

    def __str__(self) -> str:
        return f"{self.gap} {self.access.value} {self.addr:#x}"
