"""Trace transformations.

Utilities a downstream user needs when working with real or synthetic
traces: truncating to a reference budget (the paper's own methodology was
"restricted by the practical limit on trace lengths"), selecting thread
subsets (scaling studies), and remapping address spaces (merging traces
from different sources without collisions).

All transforms are pure: they return new trace sets and never mutate their
inputs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.trace.stream import ThreadTrace, TraceSet
from repro.util.validate import check_non_empty, check_positive

__all__ = ["truncate_traces", "select_threads", "remap_addresses", "merge_trace_sets"]


def truncate_traces(trace_set: TraceSet, max_refs: int) -> TraceSet:
    """Limit every thread to its first ``max_refs`` references.

    Thread lengths shrink accordingly (gaps beyond the cut are dropped
    with their references).
    """
    check_positive("max_refs", max_refs)
    threads = [
        ThreadTrace(
            t.thread_id,
            t.gaps[:max_refs].copy(),
            t.addrs[:max_refs].copy(),
            t.writes[:max_refs].copy(),
        )
        for t in trace_set
    ]
    return TraceSet(trace_set.name, threads)


def select_threads(trace_set: TraceSet, thread_ids: Sequence[int]) -> TraceSet:
    """A trace set containing only the chosen threads, re-numbered densely.

    The selection order defines the new ids: ``thread_ids[i]`` becomes
    thread ``i``.

    Raises:
        ValueError: On unknown or duplicate thread ids.
    """
    check_non_empty("thread_ids", thread_ids)
    if len(set(thread_ids)) != len(thread_ids):
        raise ValueError("thread_ids must be distinct")
    threads = []
    for new_id, old_id in enumerate(thread_ids):
        if not 0 <= old_id < trace_set.num_threads:
            raise ValueError(
                f"unknown thread {old_id} (trace set has "
                f"{trace_set.num_threads})"
            )
        old = trace_set[old_id]
        threads.append(
            ThreadTrace(new_id, old.gaps.copy(), old.addrs.copy(),
                        old.writes.copy())
        )
    return TraceSet(trace_set.name, threads)


def remap_addresses(
    trace_set: TraceSet, mapping: Callable[[np.ndarray], np.ndarray]
) -> TraceSet:
    """Apply a vectorized address mapping to every reference.

    ``mapping`` receives an int64 address array and must return an int64
    array of the same shape with non-negative values (e.g.
    ``lambda a: a + 0x10000`` to relocate a whole trace set).
    """
    threads = []
    for t in trace_set:
        new_addrs = np.asarray(mapping(t.addrs), dtype=np.int64)
        if new_addrs.shape != t.addrs.shape:
            raise ValueError(
                f"mapping changed the address array shape for thread "
                f"{t.thread_id}: {t.addrs.shape} -> {new_addrs.shape}"
            )
        threads.append(ThreadTrace(t.thread_id, t.gaps.copy(), new_addrs,
                                   t.writes.copy()))
    return TraceSet(trace_set.name, threads)


def merge_trace_sets(name: str, trace_sets: Sequence[TraceSet]) -> TraceSet:
    """Concatenate several trace sets into one multiprogrammed workload.

    Threads are re-numbered densely in input order, and each input's
    address space is relocated past the previous inputs' maximum address
    (rounded up to a 64-word boundary) so the merged sets never alias.
    """
    check_non_empty("trace_sets", trace_sets)
    threads: list[ThreadTrace] = []
    base = 0
    for ts in trace_sets:
        peak = 0
        for t in ts:
            addrs = t.addrs + base
            threads.append(
                ThreadTrace(len(threads), t.gaps.copy(), addrs, t.writes.copy())
            )
            if t.addrs.size:
                peak = max(peak, int(t.addrs.max()) + 1)
        base += -(-peak // 64) * 64
    return TraceSet(name, threads)
