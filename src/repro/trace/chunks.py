"""Bounded-size trace chunks and their verified on-disk spill format.

The streaming trace architecture (``docs/STREAMING.md``) replaces whole
per-thread reference columns with a sequence of :class:`TraceChunk`
slabs: each holds at most ``chunk_refs`` references of one thread, as
the same three parallel arrays a :class:`~repro.trace.stream.ThreadTrace`
carries, plus the chunk's global offset.  Everything downstream — run
compression, the replay kernels, the static analysis — operates on one
chunk at a time, so resident reference data is O(chunk × threads)
instead of O(total references).

:class:`ChunkStore` spills chunks to disk through the shared
:class:`~repro.util.verified_store.VerifiedDirectory` discipline (atomic
tmp→fsync→rename commits, sha256 sidecars verified on every load), so a
million-reference scenario can be generated once, dropped from memory,
and replayed from disk chunk by chunk.  Damage is handled like every
other verified store in the pipeline: a chunk whose bytes no longer
match its sidecar is evicted and reported as missing — the spill is a
cache of generated data, never the only copy of ground truth, so the
caller regenerates.
"""

from __future__ import annotations

import io
import zipfile
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.util.validate import check_positive
from repro.util.verified_store import VerifiedDirectory

__all__ = ["TraceChunk", "ChunkStore", "chunk_arrays", "DEFAULT_CHUNK_REFS"]

#: Default chunk size in references.  Small enough that 1024 resident
#: chunks (one per thread of the largest scenario) stay a few megabytes;
#: large enough that per-chunk numpy overhead is amortized.
DEFAULT_CHUNK_REFS = 4096

#: Spill format version, embedded in every chunk entry.
FORMAT_VERSION = 1


class TraceChunk:
    """One bounded slab of a thread's trace.

    Attributes:
        thread_id: Owning thread (dense application index).
        start: Global index of this chunk's first reference.
        gaps: int64 array; non-memory instructions before each reference.
        addrs: int64 array; word address of each reference.
        writes: bool array; True where the reference is a write.
    """

    __slots__ = ("thread_id", "start", "gaps", "addrs", "writes")

    def __init__(self, thread_id: int, start: int, gaps: np.ndarray,
                 addrs: np.ndarray, writes: np.ndarray) -> None:
        self.thread_id = int(thread_id)
        self.start = int(start)
        self.gaps = np.ascontiguousarray(gaps, dtype=np.int64)
        self.addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        self.writes = np.ascontiguousarray(writes, dtype=bool)

    @property
    def num_refs(self) -> int:
        return int(self.addrs.size)

    @property
    def end(self) -> int:
        """Global index one past this chunk's last reference."""
        return self.start + self.num_refs

    def __repr__(self) -> str:
        return (
            f"TraceChunk(thread={self.thread_id}, "
            f"[{self.start}:{self.end}))"
        )


def chunk_arrays(
    thread_id: int,
    gaps: np.ndarray,
    addrs: np.ndarray,
    writes: np.ndarray,
    chunk_refs: int,
    *,
    start: int = 0,
) -> Iterator[TraceChunk]:
    """Slice parallel reference arrays into bounded chunks (views, no
    copies).  ``start`` offsets the produced chunks' global indices, so a
    generator that already works incrementally can chunk each batch it
    produces without materializing the whole thread."""
    check_positive("chunk_refs", chunk_refs)
    n = int(addrs.size)
    for lo in range(0, n, chunk_refs):
        hi = min(lo + chunk_refs, n)
        yield TraceChunk(thread_id, start + lo, gaps[lo:hi],
                         addrs[lo:hi], writes[lo:hi])


def _encode_chunk(chunk: TraceChunk) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        scalars=np.array(
            [FORMAT_VERSION, chunk.thread_id, chunk.start, chunk.num_refs],
            dtype=np.int64,
        ),
        gaps=chunk.gaps,
        addrs=chunk.addrs,
        writes=chunk.writes,
    )
    return buffer.getvalue()


def _decode_chunk(data: bytes) -> TraceChunk:
    with np.load(io.BytesIO(data)) as payload:
        scalars = payload["scalars"]
        if scalars.shape != (4,):
            raise ValueError(f"malformed chunk header {scalars!r}")
        version, thread_id, start, num_refs = (int(v) for v in scalars)
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported chunk format version {version}")
        gaps = payload["gaps"]
        addrs = payload["addrs"]
        writes = payload["writes"]
    if not (gaps.shape == addrs.shape == writes.shape == (num_refs,)):
        raise ValueError(
            f"chunk arrays disagree with header: {gaps.shape}, "
            f"{addrs.shape}, {writes.shape} vs {num_refs} refs"
        )
    return TraceChunk(thread_id, start, gaps, addrs, writes)


class ChunkStore:
    """Spilled chunks of one trace set, one verified entry per chunk.

    Entries are named ``t<thread>-c<index>.npz``; the store is a plain
    :class:`VerifiedDirectory`, so commits are atomic, every load is
    checksum-verified, and the chaos harness can strike the write path
    at fault site ``chunks``.
    """

    #: Decoder failures treated as damage (evict + MissingChunkError).
    _LOAD_ERRORS = (ValueError, KeyError, OSError, EOFError,
                    zipfile.BadZipFile)

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._store = VerifiedDirectory(
            self.directory, fault_site="chunks")

    @staticmethod
    def entry_name(thread_id: int, index: int) -> str:
        return f"t{thread_id:05d}-c{index:06d}.npz"

    def spill(self, chunk: TraceChunk, index: int) -> bool:
        """Persist one chunk; True if committed (False on a sick disk)."""
        return self._store.commit(
            self.entry_name(chunk.thread_id, index), _encode_chunk(chunk))

    def load(self, thread_id: int, index: int) -> TraceChunk:
        """Load one verified chunk; raises :class:`MissingChunkError` on a
        missing or damaged entry (the caller regenerates the scenario)."""
        got = self._store.load(
            self.entry_name(thread_id, index), _decode_chunk,
            errors=self._LOAD_ERRORS, describe="trace chunk",
        )
        if got is None:
            raise MissingChunkError(
                f"chunk {index} of thread {thread_id} is missing or damaged "
                f"in {self.directory}; regenerate the scenario spill"
            )
        return got

    def iter_thread(self, thread_id: int, num_chunks: int
                    ) -> Iterator[TraceChunk]:
        """Load a thread's chunks in order, one resident at a time."""
        for index in range(num_chunks):
            yield self.load(thread_id, index)


class MissingChunkError(RuntimeError):
    """A spilled chunk could not be loaded (missing or damaged)."""


__all__.append("MissingChunkError")
