"""Bounded-memory workload generation for million-reference scenarios.

The paper-suite generators (:mod:`repro.workload.generator`) materialize
every thread's reference columns before anything replays — fine at the
paper's scale (tens of thousands of references), fatal for the stress
scenarios the streaming architecture exists for.  This module closes the
loop end to end:

* :class:`StreamScenario` — a deterministic *regenerating* workload: any
  chunk of any thread is a pure function of ``(seed, thread, chunk)``,
  so the :class:`~repro.trace.streaming.StreamingTraceSet` it builds
  holds O(chunk) reference data no matter how many total references the
  scenario spans.  Nothing is ever materialized unless a caller asks.
* :func:`spill_streaming_set` — walk any streaming set chunk by chunk
  into a verified :class:`~repro.trace.chunks.ChunkStore`, still with
  one chunk resident, and return the disk-backed set.
* :func:`million_reference_scenario` — the canonical CI stress case:
  1,000,000+ references across 1024 threads, plus the round-robin
  :class:`~repro.placement.base.PlacementMap` the benchmark replays
  under (the placement *algorithms* are O(threads²) on the sharing
  matrix and are not the thing under test here).

Determinism discipline: every random draw comes from a
:class:`~repro.util.rng.RngStreams` child named by the scenario seed,
the thread id and the chunk index — regenerating chunk 17 of thread 3
always yields the same bytes, which is what lets a damaged spill entry
be rebuilt and what pins the streaming-vs-materialized differential
suites bit-for-bit (``docs/STREAMING.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.trace.chunks import ChunkStore, TraceChunk
from repro.trace.streaming import (
    StreamingThreadTrace,
    StreamingTraceSet,
    stream_from_store,
)
from repro.util.rng import RngStreams
from repro.util.validate import check_positive
from repro.workload.shaping import distribute_gaps

__all__ = [
    "StreamScenario",
    "spill_streaming_set",
    "million_reference_scenario",
]

#: Stream-name prefix every scenario draw derives from.
_STREAM_NAME = "stream-scenario"


@dataclass(frozen=True)
class StreamScenario:
    """A deterministic, regenerating chunked workload.

    The address space is the classic sharing layout: one shared region of
    ``shared_words`` at the bottom, then one private region of
    ``private_words`` per thread stacked above it.  Each reference is
    shared with probability ``shared_fraction`` (uniform over the shared
    region) and private otherwise (uniform over the thread's own region);
    every ``write_period``-th reference of a thread is a write; each
    reference carries an average of ``gap_per_ref`` non-memory
    instructions, multinomially distributed within its chunk.

    Two deliberate exactness anchors keep the summary metadata O(1) and
    *honest* (the engines size kernel arrays from it):

    * the gap budget is exact per chunk (``gap_per_ref × chunk_refs``),
      so ``length = refs × (1 + gap_per_ref)`` without a pass;
    * reference 0 of every thread is pinned to the top word of that
      thread's private region, so ``max_addr`` is achieved, not merely
      bounded.
    """

    num_threads: int
    refs_per_thread: int
    seed: int = 0
    chunk_refs: int = 256
    shared_words: int = 4096
    private_words: int = 1024
    shared_fraction: float = 0.2
    write_period: int = 4
    gap_per_ref: int = 2

    def __post_init__(self) -> None:
        check_positive("num_threads", self.num_threads)
        check_positive("refs_per_thread", self.refs_per_thread)
        check_positive("chunk_refs", self.chunk_refs)
        check_positive("shared_words", self.shared_words)
        check_positive("private_words", self.private_words)
        check_positive("write_period", self.write_period)
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError(
                f"shared_fraction must be in [0, 1], got {self.shared_fraction}"
            )
        if self.gap_per_ref < 0:
            raise ValueError(
                f"gap_per_ref must be >= 0, got {self.gap_per_ref}"
            )

    # -- derived, all O(1) -----------------------------------------------

    @property
    def num_chunks(self) -> int:
        """Chunks per thread."""
        return -(-self.refs_per_thread // self.chunk_refs)

    @property
    def total_refs(self) -> int:
        return self.num_threads * self.refs_per_thread

    def _private_base(self, thread_id: int) -> int:
        return self.shared_words + thread_id * self.private_words

    def _thread_max_addr(self, thread_id: int) -> int:
        return self._private_base(thread_id) + self.private_words - 1

    def _thread_writes(self) -> int:
        # Positions 0, p, 2p, ... below refs_per_thread.
        return -(-self.refs_per_thread // self.write_period)

    def _thread_length(self) -> int:
        return self.refs_per_thread * (1 + self.gap_per_ref)

    # -- chunk generation ------------------------------------------------

    def chunk(self, thread_id: int, index: int) -> TraceChunk:
        """Regenerate one chunk: a pure function of (seed, thread, index)."""
        if not 0 <= thread_id < self.num_threads:
            raise ValueError(f"unknown thread {thread_id}")
        if not 0 <= index < self.num_chunks:
            raise ValueError(
                f"chunk {index} out of range for thread {thread_id} "
                f"(thread has {self.num_chunks} chunks)"
            )
        lo = index * self.chunk_refs
        k = min(self.chunk_refs, self.refs_per_thread - lo)
        rng = RngStreams(self.seed).get(_STREAM_NAME, thread_id, index)
        base = self._private_base(thread_id)
        addrs = base + rng.integers(0, self.private_words, k)
        shared = rng.random(k) < self.shared_fraction
        count = int(np.count_nonzero(shared))
        addrs[shared] = rng.integers(0, self.shared_words, count)
        if lo == 0:
            # The max_addr anchor: the thread's first reference touches
            # the top of its private region.
            addrs[0] = self._thread_max_addr(thread_id)
        writes = (lo + np.arange(k, dtype=np.int64)) % self.write_period == 0
        gaps = distribute_gaps(rng, k, self.gap_per_ref * k)
        return TraceChunk(thread_id, lo, gaps, addrs, writes)

    def _thread_source(self, thread_id: int):
        def source() -> Iterator[TraceChunk]:
            for index in range(self.num_chunks):
                yield self.chunk(thread_id, index)
        return source

    def build(self, name: str = "stream-scenario") -> StreamingTraceSet:
        """The scenario as a regenerating streaming set: every pass over a
        thread re-derives its chunks from the seed, O(chunk) resident."""
        threads = [
            StreamingThreadTrace(
                tid, self._thread_source(tid),
                num_refs=self.refs_per_thread,
                length=self._thread_length(),
                num_writes=self._thread_writes(),
                max_addr=self._thread_max_addr(tid),
            )
            for tid in range(self.num_threads)
        ]
        return StreamingTraceSet(name, threads)

    def round_robin_placement(self, num_processors: int):
        """Thread ``t`` on processor ``t mod p`` — the benchmark placement.

        Built directly rather than through a placement algorithm: the
        algorithms score the O(threads²) pairwise sharing matrix, which
        is not what a replay-memory benchmark should spend its budget on.
        """
        from repro.placement.base import PlacementMap

        check_positive("num_processors", num_processors)
        assignment = np.arange(self.num_threads, dtype=np.int64) \
            % num_processors
        return PlacementMap(assignment, num_processors)


def spill_streaming_set(stream_set: StreamingTraceSet,
                        directory) -> StreamingTraceSet:
    """Spill a streaming set to a verified chunk store, one chunk resident.

    The streaming counterpart of
    :func:`~repro.trace.streaming.spill_trace_set`: the source set's
    chunks are pulled, committed and dropped one at a time, so a
    regenerating scenario can be persisted without ever materializing a
    thread.  A failed commit (sick disk) raises — a spill that silently
    dropped chunks would corrupt replay, not degrade it.
    """
    store = ChunkStore(directory)
    metadata = []
    for trace in stream_set:
        count = 0
        max_addr = 0
        num_refs = 0
        num_writes = 0
        for index, chunk in enumerate(trace.chunks()):
            if not store.spill(chunk, index):
                raise OSError(
                    f"could not spill chunk {index} of thread "
                    f"{trace.thread_id} under {directory}"
                )
            count = index + 1
            num_refs += chunk.num_refs
            num_writes += int(np.count_nonzero(chunk.writes))
            if chunk.num_refs:
                max_addr = max(max_addr, int(chunk.addrs.max()))
        metadata.append({
            "num_chunks": count,
            "num_refs": num_refs,
            "length": trace.length,
            "num_writes": num_writes,
            "max_addr": max_addr,
        })
    return stream_from_store(stream_set.name, store, metadata)


def million_reference_scenario(*, seed: int = 0,
                               chunk_refs: int = 256) -> StreamScenario:
    """The CI stress case: 1024 threads × 977 references ≈ 1.0M references
    (1,000,448 exactly), three instructions per reference on average.

    Small chunks on purpose: 256 references × 1024 threads keeps peak
    resident reference data in the single-digit megabytes while the
    materialized equivalent needs every column at once — the contrast
    ``benchmarks/bench_streaming_memory.py`` measures and CI enforces.
    """
    return StreamScenario(
        num_threads=1024,
        refs_per_thread=977,
        seed=seed,
        chunk_refs=chunk_refs,
    )
