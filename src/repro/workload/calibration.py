"""Calibration: does a generated application match its published targets?

The synthetic suite substitutes for traces we cannot have (DESIGN.md); this
module is the evidence the substitution is faithful.  For each application
it compares the :class:`~repro.trace.analysis.TraceSetAnalysis` of the
generated traces against the paper's Table 2 row and classifies each
quantity as within tolerance or not.

Tolerances are deliberately asymmetric in kind:

* structural quantities (thread count) must match exactly;
* first-order rates (% shared references, thread-length mean) must match
  tightly — the paper's conclusions lean on them directly;
* second-order shape quantities (references per shared address,
  deviations) must land in the right *regime*: the paper's argument uses
  them only qualitatively ("uniform" vs "skewed", "high locality" vs
  "low"), and they span two orders of magnitude across the suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.trace.analysis import TraceSetAnalysis
from repro.trace.stream import TraceSet
from repro.workload.targets import AppTargets

__all__ = [
    "DeviationBand",
    "CalibrationCheck",
    "CalibrationReport",
    "deviation_band",
    "calibrate",
]


class DeviationBand(enum.Enum):
    """Qualitative regime of a percent-deviation value."""

    UNIFORM = "uniform"  # < 25%: the paper's "fairly uniform" sharing
    MODERATE = "moderate"  # 25-75%
    SKEWED = "skewed"  # > 75%: a few dominant pairs / very long threads


def deviation_band(percent_dev: float) -> DeviationBand:
    """Classify a Dev(%) value into its qualitative band."""
    if percent_dev < 25.0:
        return DeviationBand.UNIFORM
    if percent_dev <= 75.0:
        return DeviationBand.MODERATE
    return DeviationBand.SKEWED


@dataclass(frozen=True)
class CalibrationCheck:
    """One compared quantity."""

    quantity: str
    target: float
    measured: float
    ok: bool
    note: str = ""

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "MISS"
        return (
            f"{self.quantity}: target={self.target:.4g} measured={self.measured:.4g}"
            f" [{verdict}]{' ' + self.note if self.note else ''}"
        )


@dataclass(frozen=True)
class CalibrationReport:
    """All checks for one generated application."""

    app: str
    scale: float
    checks: tuple[CalibrationCheck, ...]

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list[CalibrationCheck]:
        return [c for c in self.checks if not c.ok]

    def __str__(self) -> str:
        lines = [f"calibration of {self.app} (scale={self.scale}):"]
        lines += [f"  {check}" for check in self.checks]
        return "\n".join(lines)


def _ratio_check(name: str, target: float, measured: float, factor: float,
                 note: str = "") -> CalibrationCheck:
    if target <= 0:
        ok = measured <= factor  # degenerate target: just require smallness
    else:
        ratio = measured / target
        ok = (1.0 / factor) <= ratio <= factor
    return CalibrationCheck(name, target, measured, ok, note)


def calibrate(
    trace_set: TraceSet,
    targets: AppTargets,
    scale: float,
    *,
    analysis: TraceSetAnalysis | None = None,
) -> CalibrationReport:
    """Compare a generated trace set against its Table 2 targets.

    Args:
        trace_set: The generated application.
        targets: Its published characteristics.
        scale: The thread-length scale the application was built with
            (needed to compute the expected absolute thread length).
        analysis: Optional pre-computed analysis to reuse.
    """
    analysis = analysis or TraceSetAnalysis(trace_set)
    checks: list[CalibrationCheck] = []

    checks.append(
        CalibrationCheck(
            "num_threads",
            float(targets.num_threads),
            float(trace_set.num_threads),
            trace_set.num_threads == targets.num_threads,
        )
    )

    expected_length = targets.thread_length_mean_k * 1000.0 * scale
    measured_length = analysis.thread_lengths.mean
    checks.append(
        _ratio_check("thread_length_mean", expected_length, measured_length, 1.10,
                     note="must track the Table 2 mean closely")
    )

    # Thread-length deviation: LOAD-BAL's entire effect hinges on it.  The
    # affine shaping matches it before flooring; allow 15 points of drift.
    measured_dev = analysis.thread_lengths.percent_dev
    checks.append(
        CalibrationCheck(
            "thread_length_dev_pct",
            targets.thread_length_dev_pct,
            measured_dev,
            abs(measured_dev - targets.thread_length_dev_pct)
            <= max(15.0, 0.25 * targets.thread_length_dev_pct),
        )
    )

    measured_shared_pct = analysis.percent_shared_refs.mean
    checks.append(
        CalibrationCheck(
            "shared_refs_pct",
            targets.shared_refs_pct,
            measured_shared_pct,
            abs(measured_shared_pct - targets.shared_refs_pct) <= 12.0,
        )
    )

    checks.append(
        _ratio_check(
            "refs_per_shared_addr",
            targets.refs_per_shared_addr,
            analysis.refs_per_shared_address.mean,
            2.5,
            note="regime-level agreement (paper uses it qualitatively)",
        )
    )

    target_band = deviation_band(targets.pairwise_sharing_dev_pct)
    measured_band = deviation_band(analysis.pairwise_sharing.percent_dev)
    adjacent = {
        (DeviationBand.UNIFORM, DeviationBand.MODERATE),
        (DeviationBand.MODERATE, DeviationBand.UNIFORM),
        (DeviationBand.MODERATE, DeviationBand.SKEWED),
        (DeviationBand.SKEWED, DeviationBand.MODERATE),
    }
    checks.append(
        CalibrationCheck(
            "pairwise_sharing_dev_band",
            targets.pairwise_sharing_dev_pct,
            analysis.pairwise_sharing.percent_dev,
            measured_band is target_band or (target_band, measured_band) in adjacent,
            note=f"target band {target_band.value}, measured {measured_band.value}",
        )
    )

    return CalibrationReport(app=trace_set.name, scale=scale, checks=tuple(checks))
