"""Assembly of per-thread traces from access recipes.

A :class:`ThreadRecipe` fully describes one synthetic thread: its length,
how many of its instructions are data references, how those split between
shared channels and the thread's private segment, and the run structure of
each.  :func:`generate_thread` turns a recipe into a
:class:`~repro.trace.stream.ThreadTrace`; :func:`generate_trace_set` builds
a whole application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.stream import ThreadTrace, TraceSet
from repro.workload.address_space import Region
from repro.workload.channels import PoolChannel
from repro.workload.shaping import distribute_gaps
from repro.util.validate import check_positive, check_range

__all__ = ["ThreadRecipe", "generate_thread", "generate_trace_set"]

# A single run never exceeds this many references; keeps pathological
# geometric draws from serializing a whole thread into one run.
_MAX_RUN = 8192


@dataclass
class ThreadRecipe:
    """Everything needed to synthesize one thread's trace.

    Attributes:
        thread_id: Dense thread index.
        length: Thread length in instructions (gaps + references).
        data_ref_fraction: Fraction of instructions that are data references.
        shared_fraction: Fraction of data references aimed at shared data
            (the Table 2 "Shared Refs" percentage, as a fraction).
        channels: Weighted shared channels (must be non-empty when
            ``shared_fraction > 0``).
        private_region: This thread's private segment.
        private_reuse: Mean references per distinct private address; sizes
            the private working set.
        private_mean_run: Mean sequential-run length over private data.
        private_write_prob: Write probability of private references.
        phases: Barrier-phase count.  With more than one phase the
            reference stream is organized into that many rounds, each of
            which issues its read-only run segments first and its
            write-containing segments at the end — the paper's barrier
            structure ("different threads operate on the same piece of
            data within a phase", updates at phase end).  Order-only: the
            static per-thread characteristics are unchanged.
        private_window: Granularity (words) of the working-set scatter —
            normally the cache-block size, so the working set is a random
            set of whole blocks spread across the private region rather
            than one dense prefix.  Dense prefixes would make the cache
            sets two co-scheduled threads collide on a deterministic
            function of their thread ids — a placement lottery real
            programs' scattered heaps do not play.
    """

    thread_id: int
    length: int
    data_ref_fraction: float = 0.3
    shared_fraction: float = 0.6
    channels: list[PoolChannel] = field(default_factory=list)
    private_region: Region | None = None
    private_reuse: float = 24.0
    private_mean_run: float = 8.0
    private_write_prob: float = 0.3
    private_window: int = 4
    phases: int = 1

    def __post_init__(self) -> None:
        check_positive("length", self.length)
        check_range("data_ref_fraction", self.data_ref_fraction, 0.0, 1.0)
        check_range("shared_fraction", self.shared_fraction, 0.0, 1.0)
        check_positive("private_reuse", self.private_reuse)
        check_positive("private_mean_run", self.private_mean_run)
        check_range("private_write_prob", self.private_write_prob, 0.0, 1.0)
        check_positive("phases", self.phases)


def _channel_quotas(channels: list[PoolChannel], total: int) -> np.ndarray:
    """Split ``total`` references across channels proportionally to weight.

    Largest-remainder apportionment: exact totals, and every channel gets
    its deterministic share.  Deterministic shares (rather than a random
    channel per run) matter for fidelity: they remove Poisson noise from
    per-channel volumes, keeping inter-thread sharing as uniform as the
    pattern's weights say it is — the paper's "uniform data sharing".
    """
    weights = np.array([c.weight for c in channels], dtype=float)
    raw = total * weights / weights.sum()
    quotas = np.floor(raw).astype(np.int64)
    remainder = total - int(quotas.sum())
    if remainder > 0:
        order = np.argsort(-(raw - quotas))
        quotas[order[:remainder]] += 1
    return quotas


def _sample_shared_segments(
    rng: np.random.Generator, channels: list[PoolChannel], total: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Draw shared-run segments totalling exactly ``total`` references."""
    if total == 0:
        return []
    if not channels:
        raise ValueError("shared references requested but no channels supplied")
    segments = []
    for channel, quota in zip(channels, _channel_quotas(channels, total)):
        remaining = int(quota)
        while remaining > 0:
            addrs, writes = channel.sample_run(rng, min(remaining, _MAX_RUN))
            segments.append((addrs, writes))
            remaining -= addrs.size
    return segments


def _private_working_set(
    rng: np.random.Generator, recipe: "ThreadRecipe", total: int
) -> np.ndarray:
    """Choose the thread's private working set: scattered whole windows.

    The working set (sized by ``private_reuse``) is a random selection of
    block-granular windows across the private region, concatenated into a
    virtual index space the runs cycle over.  Scattering decorrelates the
    cache-set mapping of co-scheduled threads' private data.
    """
    region = recipe.private_region
    window = max(1, min(recipe.private_window, region.size))
    ws_words = int(min(region.size, max(window, round(total / recipe.private_reuse))))
    n_windows = max(1, -(-ws_words // window))
    available = region.size // window
    chosen = rng.choice(available, size=min(n_windows, available), replace=False)
    offsets = []
    for start in np.sort(chosen):
        offsets.extend(range(start * window, min((start + 1) * window, region.size)))
    return region.addrs(np.array(offsets, dtype=np.int64))


def _sample_private_segments(
    rng: np.random.Generator, recipe: "ThreadRecipe", total: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Draw private-run segments totalling exactly ``total`` references.

    The private stream is a scattered working set scanned in short
    sequential runs starting at random offsets; reuse (and therefore the
    private cache footprint) is set by ``private_reuse``.
    """
    if total == 0:
        return []
    if recipe.private_region is None:
        raise ValueError("private references requested but no private region supplied")
    working_set = _private_working_set(rng, recipe, total)
    ws = int(working_set.size)
    p = 1.0 / max(recipe.private_mean_run, 1.0)
    segments = []
    remaining = total
    while remaining > 0:
        run = min(int(rng.geometric(p)), remaining, _MAX_RUN)
        base = int(rng.integers(0, ws))
        offsets = (base + np.arange(run)) % ws
        addrs = working_set[offsets]
        writes = rng.random(run) < recipe.private_write_prob
        segments.append((addrs, writes))
        remaining -= run
    return segments


def _order_segments(
    rng: np.random.Generator,
    segments: list[tuple[np.ndarray, np.ndarray]],
    phases: int,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Arrange run segments into the thread's final order.

    One phase: a uniformly random shuffle (run boundaries preserved).
    Several phases: segments are dealt randomly across phases; within a
    phase, read-only segments come first and write-containing segments
    last — the barrier structure of phase-parallel programs.
    """
    if not segments:
        return []
    order = rng.permutation(len(segments))
    if phases <= 1:
        return [segments[i] for i in order]
    buckets: list[tuple[list, list]] = [([], []) for _ in range(phases)]
    for position, index in enumerate(order):
        segment = segments[index]
        reads, writes = buckets[position % phases]
        (writes if bool(segment[1].any()) else reads).append(segment)
    ordered: list[tuple[np.ndarray, np.ndarray]] = []
    for reads, writes in buckets:
        ordered.extend(reads)
        ordered.extend(writes)
    return ordered


def generate_thread(recipe: ThreadRecipe, rng: np.random.Generator) -> ThreadTrace:
    """Synthesize one thread trace from its recipe.

    The reference stream interleaves shared and private run segments in a
    random order (run boundaries preserved — interleaving happens *between*
    runs, never inside one, which is what keeps sharing sequential); the
    non-memory instruction budget is spread across references as gaps so
    the trace's total length equals ``recipe.length`` exactly.
    """
    n_refs = int(round(recipe.length * recipe.data_ref_fraction))
    n_refs = max(1, min(n_refs, recipe.length))
    n_shared = int(round(n_refs * recipe.shared_fraction))
    if not recipe.channels:
        n_shared = 0
    n_private = n_refs - n_shared
    if recipe.private_region is None:
        n_shared, n_private = n_refs, 0

    segments = _sample_shared_segments(rng, recipe.channels, n_shared)
    segments += _sample_private_segments(rng, recipe, n_private)
    ordered = _order_segments(rng, segments, recipe.phases)
    addrs = (np.concatenate([s[0] for s in ordered])
             if ordered else np.zeros(0, np.int64))
    writes = (np.concatenate([s[1] for s in ordered])
              if ordered else np.zeros(0, bool))

    gaps = distribute_gaps(rng, addrs.size, recipe.length - addrs.size)
    return ThreadTrace(recipe.thread_id, gaps, addrs.astype(np.int64), writes)


def generate_trace_set(
    name: str,
    recipes: list[ThreadRecipe],
    rng_for_thread,
) -> TraceSet:
    """Generate a whole application from per-thread recipes.

    ``rng_for_thread(thread_id)`` must return an independent generator per
    thread, so threads are reproducible individually and in any order.
    """
    threads = [
        generate_thread(recipe, rng_for_thread(recipe.thread_id)) for recipe in recipes
    ]
    return TraceSet(name, threads)
