"""Distribution-shaping helpers for the workload generators.

Three jobs:

* draw per-thread lengths whose population mean and coefficient of
  variation match the paper's Table 2 targets (:func:`shaped_lengths`);
* split a thread's non-memory instruction budget into per-reference gaps
  (:func:`distribute_gaps`);
* draw the sequential-run lengths that give shared data its long
  single-thread access runs (:func:`run_lengths`).
"""

from __future__ import annotations

import numpy as np

from repro.util.validate import check_positive

__all__ = ["shaped_lengths", "distribute_gaps", "run_lengths"]


def shaped_lengths(
    rng: np.random.Generator,
    count: int,
    mean: float,
    cv: float,
    *,
    floor: int = 16,
) -> np.ndarray:
    """Draw ``count`` integer lengths with population mean ``mean`` and
    coefficient of variation ``cv``.

    Raw values come from a lognormal (the natural model for task-length
    skew: FFT's 187.6% deviation means a few very long threads among many
    short ones); the sample is then affinely corrected so the *population*
    statistics match the targets exactly, and floored at ``floor`` so that
    no thread degenerates to an empty trace.  The flooring perturbs the
    moments only when ``cv`` is extreme relative to ``mean``.

    ``cv == 0`` returns perfectly uniform lengths (Cholesky, Topopt).
    """
    check_positive("count", count)
    check_positive("mean", mean)
    if cv < 0:
        raise ValueError(f"cv must be >= 0, got {cv}")
    if cv == 0.0 or count == 1:
        return np.full(count, max(int(round(mean)), floor), dtype=np.int64)

    sigma = float(np.sqrt(np.log1p(cv * cv)))
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=count)
    sample_mean = raw.mean()
    sample_std = raw.std(ddof=0)
    if sample_std == 0.0:  # pragma: no cover - astronomically unlikely
        return np.full(count, max(int(round(mean)), floor), dtype=np.int64)
    # Affine correction: exact population mean and std.
    corrected = mean + (raw - sample_mean) * (cv * mean / sample_std)
    lengths = np.maximum(np.round(corrected), floor).astype(np.int64)
    return lengths


def distribute_gaps(
    rng: np.random.Generator, num_refs: int, total_gap: int
) -> np.ndarray:
    """Split ``total_gap`` non-memory instructions across ``num_refs`` gaps.

    Gaps are non-negative integers summing exactly to ``total_gap``; the
    split is a multinomial over references, i.e. each non-memory
    instruction lands before a uniformly random reference.  This keeps the
    instantaneous data-reference rate statistically uniform along the
    thread, which is what makes thread *length* (not reference phasing)
    the load-balance quantity, as in the paper.
    """
    if num_refs < 0 or total_gap < 0:
        raise ValueError("num_refs and total_gap must be >= 0")
    if num_refs == 0:
        if total_gap != 0:
            raise ValueError("cannot place a non-zero gap budget with zero refs")
        return np.zeros(0, dtype=np.int64)
    return rng.multinomial(total_gap, np.full(num_refs, 1.0 / num_refs)).astype(np.int64)


def run_lengths(
    rng: np.random.Generator, total: int, mean_run: float, *, cap: int | None = None
) -> np.ndarray:
    """Draw sequential-run lengths summing exactly to ``total``.

    Runs are geometric with the given mean (minimum 1), truncated so the
    final run lands exactly on ``total``.  ``cap`` optionally bounds any
    single run.  The long runs these produce are the paper's "sequential
    sharing": a thread references a shared datum many times before any
    other thread contends for it.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    check_positive("mean_run", mean_run)
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    p = 1.0 / max(mean_run, 1.0)
    lengths: list[int] = []
    remaining = total
    while remaining > 0:
        run = int(rng.geometric(p))
        if cap is not None:
            run = min(run, cap)
        run = min(run, remaining)
        lengths.append(run)
        remaining -= run
    return np.array(lengths, dtype=np.int64)
