"""Shared-data access channels.

A *channel* is one stream of accesses a thread makes into a shared region:
"my partition", "everyone's particle array", "the mailbox I write to thread
7", and so on.  Every access pattern in :mod:`repro.workload.patterns` is a
weighted composition of channels; the generator draws *runs* (not single
references) from channels, which is what gives the synthetic traces the
paper's sequential-sharing property — a thread references a shared datum
many times before another thread contends for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.address_space import Region
from repro.util.validate import check_positive, check_range

__all__ = ["PoolChannel"]


@dataclass(frozen=True)
class PoolChannel:
    """A weighted stream of sequential runs into one shared region.

    Attributes:
        region: Shared region the channel accesses.
        weight: Relative share of the thread's shared references this
            channel receives (normalized against sibling channels).
        write_prob: Probability a reference (or, with ``run_level_writes``,
            a whole run) writes.
        mean_run: Mean sequential-run length (geometric).  This is the
            dominant control of the measured "references per shared
            address": a run of length *r* over a window of ``span``
            addresses yields roughly ``r / span`` references per address.
        span: Number of consecutive addresses a run cycles over.  ``span=1``
            is a pure single-datum run; larger spans model small records
            (a molecule, a matrix row slice).
        run_level_writes: If True, a run is entirely writes or entirely
            reads (decided once per run with ``write_prob``) — the paper's
            migratory "write runs".  If False, each reference writes
            independently with ``write_prob``.
    """

    region: Region
    weight: float
    write_prob: float
    mean_run: float
    span: int = 1
    run_level_writes: bool = False

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)
        check_range("write_prob", self.write_prob, 0.0, 1.0)
        check_positive("mean_run", self.mean_run)
        check_positive("span", self.span)
        if self.span > self.region.size:
            raise ValueError(
                f"span {self.span} exceeds region size {self.region.size}"
            )

    def sample_run(
        self, rng: np.random.Generator, max_len: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw one sequential run of at most ``max_len`` references.

        Returns parallel (addresses, writes) arrays.  The run starts at a
        uniformly random span-aligned window of the region and cycles over
        ``span`` consecutive addresses.
        """
        check_positive("max_len", max_len)
        length = min(int(rng.geometric(1.0 / max(self.mean_run, 1.0))), max_len,
                     4 * int(self.mean_run) + 8)
        base = int(rng.integers(0, self.region.size - self.span + 1))
        offsets = base + (np.arange(length) % self.span)
        addrs = self.region.addrs(offsets)
        if self.run_level_writes:
            is_write_run = rng.random() < self.write_prob
            writes = np.full(length, is_write_run, dtype=bool)
        else:
            writes = rng.random(length) < self.write_prob
        return addrs, writes
