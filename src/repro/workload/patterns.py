"""Access patterns: from qualitative sharing structure to thread recipes.

The paper explains its negative result by the *structure* of sharing in its
workload (§4.2): work is partitioned across the main shared data structures,
phases are separated by barriers, shared elements are migratory, sharing is
uniform across threads, and — critically — programs "widely read-shared but
wrote locally".  Each pattern class here reconstructs one of those
structures as a set of weighted :class:`~repro.workload.channels.PoolChannel`
per thread; :mod:`repro.workload.applications` picks the pattern and knobs
for each of the fourteen programs.

Three structural rules all patterns obey:

* **Footprint-driven sizing.**  Table 2 pins, per thread, the shared
  reference count S and the references per shared address R; together they
  pin the thread's shared footprint S / R.  For the uniformly-sharing
  programs all threads overlap on essentially the same footprint, so
  shared regions are sized to the per-toucher footprint.  Run lengths of
  about R/2 per word land each thread's reuse on the Table 2 target while
  keeping sharing *sequential*.
* **Write locally.**  Writes to read-shared data go to block-aligned,
  single-writer zones (or few-owner chunks/mailboxes), as in the paper's
  programs, whose data was partitioned or restructured for locality.
  Scattering writes from every thread over the shared pool would make each
  write broadcast invalidations to every cache — traffic the paper's
  measurements rule out.
* **Block-spanning runs.**  A sequential run cycles a cache-block-sized
  window, so one fetch amortizes over many references (the spatial
  locality the paper's programs were optimized for), keeping compulsory
  and coherence traffic per *block*, not per word.

Because footprint coverage and run length interact stochastically, sizes
and run lengths carry per-application multipliers (``pool_multiplier``,
``run_multiplier``) that :func:`repro.workload.applications.build_application`
tunes in a short deterministic fixed-point loop against the measured
characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.address_space import AddressSpace, Region
from repro.workload.channels import PoolChannel
from repro.workload.generator import ThreadRecipe
from repro.workload.targets import AppTargets
from repro.util.validate import check_positive, check_range

__all__ = [
    "BuildContext",
    "AccessPattern",
    "PartitionedPattern",
    "BarrierPhasePattern",
    "MigratoryPattern",
    "AllSharePattern",
    "RandomCommPattern",
]

_DATA_REF_FRACTION = 0.3


@dataclass
class BuildContext:
    """Inputs shared by every pattern build.

    Attributes:
        targets: The application's Table 1/2 calibration targets.
        lengths: Per-thread instruction lengths (already shaped).
        space: Address-space allocator for the application.
        rng: Generator for structural randomness (partner graphs, chunk
            ownership) — *not* for per-thread reference streams, which use
            their own per-thread streams.
        run_multiplier: Calibration multiplier on shared run lengths.
        pool_multiplier: Calibration multiplier on shared region sizes.
    """

    targets: AppTargets
    lengths: np.ndarray
    space: AddressSpace
    rng: np.random.Generator
    run_multiplier: float = 1.0
    pool_multiplier: float = 1.0

    @property
    def num_threads(self) -> int:
        return int(self.lengths.size)

    @property
    def block_words(self) -> int:
        return self.space.block_words

    @property
    def shared_fraction(self) -> float:
        return self.targets.shared_refs_pct / 100.0

    @property
    def mean_shared_refs(self) -> float:
        """Expected shared references of an average thread."""
        return float(self.lengths.mean()) * _DATA_REF_FRACTION * self.shared_fraction

    def mean_run_for(self, span: int) -> float:
        """Run length targeting the Table 2 references-per-shared-address.

        A run cycles a ``span``-word window; ~R/2 references per word means
        each word collects a couple of same-thread runs — sequential
        sharing with a little temporal spread, leaving room for another
        thread's run between them at simulation time.
        """
        per_word = 0.5 * self.targets.refs_per_shared_addr * self.run_multiplier
        run = per_word * span
        return float(max(1.0, min(run, max(self.mean_shared_refs, 1.0))))

    def footprint(self, refs_per_toucher: float) -> int:
        """Region size (words) from the per-toucher reference budget.

        ``refs / R`` distinct words give each toucher the Table 2 reuse R;
        every toucher covers (nearly) the whole region, so all touchers
        overlap — uniform sharing.
        """
        words = refs_per_toucher / max(self.targets.refs_per_shared_addr, 1.0)
        return max(1, int(round(words * self.pool_multiplier)))

    def span_for(self, region: Region) -> int:
        """Run window: one cache block, capped by the region size."""
        return min(self.block_words, region.size)


def _base_recipe(ctx: BuildContext, thread_id: int, channels: list[PoolChannel],
                 private_region: Region) -> ThreadRecipe:
    return ThreadRecipe(
        thread_id=thread_id,
        length=int(ctx.lengths[thread_id]),
        data_ref_fraction=_DATA_REF_FRACTION,
        shared_fraction=ctx.shared_fraction,
        channels=channels,
        private_region=private_region,
        private_window=ctx.block_words,
    )


def _private_regions(ctx: BuildContext) -> list[Region]:
    """One private segment per thread, several times its working set.

    The generator scatters the working set (private reuse 24) across the
    region in block windows; a 3x region gives the scatter room, so two
    co-scheduled threads' private blocks land on decorrelated cache sets.
    """
    regions = []
    for tid in range(ctx.num_threads):
        n_private = float(ctx.lengths[tid]) * _DATA_REF_FRACTION * (1 - ctx.shared_fraction)
        words = max(2 * ctx.block_words, int(round(3.0 * n_private / 24.0)))
        regions.append(ctx.space.allocate(f"private-{tid}", words))
    return regions


def _block_zones(ctx: BuildContext, pool: Region) -> list[Region]:
    """Block-aligned single-writer zones of a shared pool.

    Writers must never share a cache block (the paper's programs were
    partitioned/restructured to eliminate false sharing), so zones are
    whole blocks; a pool smaller than one block is a single zone.
    """
    block = ctx.block_words
    if pool.size <= block:
        return [pool]
    n_zones = pool.size // block
    return [
        Region(pool.start + z * block,
               block if z < n_zones - 1 else pool.size - (n_zones - 1) * block)
        for z in range(n_zones)
    ]


def _dirichlet_weights(
    rng: np.random.Generator, count: int, concentration: float | None
) -> np.ndarray:
    """Partner weights: uniform, or Dirichlet-skewed for affinity.

    Low concentration produces strongly unequal pairwise sharing (the high
    Dev(%) rows of Table 2); ``None`` gives exactly uniform sharing.
    """
    if count == 0:
        return np.zeros(0)
    if concentration is None:
        return np.full(count, 1.0 / count)
    check_positive("concentration", concentration)
    weights = rng.dirichlet(np.full(count, concentration))
    # Floor so no channel weight is exactly zero (PoolChannel requires > 0).
    weights = np.maximum(weights, 1e-6)
    return weights / weights.sum()


class AccessPattern:
    """Base class: build per-thread recipes for an application."""

    def build(self, ctx: BuildContext) -> list[ThreadRecipe]:
        """Produce one :class:`ThreadRecipe` per thread of the context."""
        raise NotImplementedError


class _ReadShareWriteLocal(AccessPattern):
    """Shared skeleton: global read-sharing plus single-writer write zones.

    One hot pool sized to the per-thread footprint; every thread read-shares
    the whole pool, while writes go to block-aligned zones owned by exactly
    one thread (zone owners round-robin; with more threads than zones the
    extra threads are pure readers, with more zones than threads a thread
    owns several).  Subclasses differ only in the split between read and
    write traffic — which is exactly how the paper distinguishes these
    programs' sharing (§4.2).
    """

    #: Fraction of a thread's shared references that go to its own zones.
    write_weight: float = 0.3
    #: Probability one of those zone runs is a write run (run-level).
    write_run_prob: float = 0.6
    #: Barrier phases (1 = unordered stream; see ThreadRecipe.phases).
    phases: int = 1

    def build(self, ctx: BuildContext) -> list[ThreadRecipe]:
        t = ctx.num_threads
        pool = ctx.space.allocate("shared-pool", ctx.footprint(ctx.mean_shared_refs))
        zones = _block_zones(ctx, pool)
        read_span = ctx.span_for(pool)
        read_run = ctx.mean_run_for(read_span)
        privates = _private_regions(ctx)

        owned: dict[int, list[Region]] = {tid: [] for tid in range(t)}
        for z, zone in enumerate(zones):
            owned[z % t].append(zone)

        recipes = []
        for tid in range(t):
            my_zones = owned[tid]
            read_weight = 1.0 - (self.write_weight if my_zones else 0.0)
            channels = [
                PoolChannel(
                    region=pool,
                    weight=read_weight,
                    write_prob=0.0,
                    mean_run=read_run,
                    span=read_span,
                )
            ]
            for zone in my_zones:
                span = ctx.span_for(zone)
                channels.append(
                    PoolChannel(
                        region=zone,
                        weight=self.write_weight / len(my_zones),
                        write_prob=self.write_run_prob,
                        mean_run=ctx.mean_run_for(span),
                        span=span,
                        run_level_writes=True,
                    )
                )
            recipe = _base_recipe(ctx, tid, channels, privates[tid])
            recipe.phases = self.phases
            recipes.append(recipe)
        return recipes


class PartitionedPattern(_ReadShareWriteLocal):
    """Work partitioned across the main shared data structures (§4.2).

    Each thread works read-mostly over the whole shared hot set and
    updates its own partition: LocusRoute, Water, MP3D, Cholesky, Pverify,
    Topopt.

    Args:
        own_weight: Share of a thread's shared references that are
            own-partition updates.
        own_write_prob: Probability an own-partition run is a write run.
    """

    def __init__(self, own_weight: float = 0.35, own_write_prob: float = 0.6) -> None:
        check_range("own_weight", own_weight, 0.0, 1.0)
        check_range("own_write_prob", own_write_prob, 0.0, 1.0)
        self.write_weight = own_weight
        self.write_run_prob = own_write_prob


class BarrierPhasePattern(_ReadShareWriteLocal):
    """Barrier-separated phases: read widely, write locally (§4.2).

    The Barnes-Hut structure: during the computation phase every thread
    read-shares the particle array; at phase end each thread writes only
    its own zone — reproduced temporally by organizing each thread's
    stream into ``phases`` rounds with the write segments at round ends.
    Barnes-Hut, Grav, Patch.

    Args:
        read_weight: Share of shared references that are global reads.
        own_write_prob: Probability an own-zone run is a write run.
        phases: Barrier phases per thread (write bursts per zone).
    """

    def __init__(self, read_weight: float = 0.75, own_write_prob: float = 0.85,
                 phases: int = 4) -> None:
        check_range("read_weight", read_weight, 0.0, 1.0)
        check_range("own_write_prob", own_write_prob, 0.0, 1.0)
        check_positive("phases", phases)
        self.write_weight = 1.0 - read_weight
        self.write_run_prob = own_write_prob
        self.phases = phases


class AllSharePattern(_ReadShareWriteLocal):
    """Every thread shares the same data (§4.2's Gauss example).

    Gaussian elimination: rows are read by everyone, each written by its
    owner.  A thin write share keeps the pool read-dominated.

    Args:
        write_weight: Share of a zone owner's references that update it.
        write_run_prob: Probability a zone run is a write run.
    """

    def __init__(self, write_weight: float = 0.1, write_run_prob: float = 0.5) -> None:
        check_range("write_weight", write_weight, 0.0, 1.0)
        check_range("write_run_prob", write_run_prob, 0.0, 1.0)
        self.write_weight = write_weight
        self.write_run_prob = write_run_prob


class MigratoryPattern(AccessPattern):
    """Migratory shared data: long write runs that move between threads.

    The paper's FFT analysis: "73% of all shared elements are migratory,
    i.e., accessed in long write runs".  The shared segment is carved into
    chunks; each chunk is owned by a few threads that access it in
    run-level write runs.  Reconstructs FFT and Vandermonde.

    Args:
        owners_per_chunk: Threads sharing each chunk (2 gives the sparsest,
            highest-deviation pairwise sharing).
        write_prob: Probability a run is a write run.
    """

    def __init__(self, owners_per_chunk: int = 3, write_prob: float = 0.7) -> None:
        if owners_per_chunk < 2:
            raise ValueError("owners_per_chunk must be >= 2 so chunks are shared")
        self.owners_per_chunk = owners_per_chunk
        self.write_prob = write_prob

    def build(self, ctx: BuildContext) -> list[ThreadRecipe]:
        """Carve chunk regions, assign owners, and build the recipes."""
        t = ctx.num_threads
        # A thread owns `owners_per_chunk` of the t chunks on average, so
        # its per-chunk budget is its shared refs divided by that.
        chunk_size = ctx.footprint(ctx.mean_shared_refs / self.owners_per_chunk)
        chunks = [ctx.space.allocate(f"chunk-{c}", chunk_size) for c in range(t)]
        span = ctx.span_for(chunks[0])
        mean_run = ctx.mean_run_for(span)

        # Ownership: chunk c's first owner is thread c (so every thread owns
        # at least one chunk); the rest are random distinct threads.
        owners: list[list[int]] = []
        for c in range(t):
            extra = [i for i in range(t) if i != c % t]
            picks = ctx.rng.choice(len(extra), size=self.owners_per_chunk - 1,
                                   replace=False)
            owners.append([c % t] + [extra[int(p)] for p in picks])

        privates = _private_regions(ctx)
        recipes = []
        for tid in range(t):
            my_chunks = [c for c in range(t) if tid in owners[c]]
            channels = [
                PoolChannel(
                    region=chunks[c],
                    weight=1.0,
                    write_prob=self.write_prob,
                    mean_run=mean_run,
                    span=span,
                    run_level_writes=True,
                )
                for c in my_chunks
            ]
            recipes.append(_base_recipe(ctx, tid, channels, privates[tid]))
        return recipes


class RandomCommPattern(AccessPattern):
    """Random pairwise communication through mailboxes (Fullconn, Health).

    Each thread has a few partners and one mailbox region per partner pair;
    both endpoints read and write the mailbox in run-level bursts (a
    producer/consumer exchange is a write run followed by the partner's
    read runs).  Dirichlet-skewed partner weights produce the large
    pairwise-sharing deviations Table 2 reports for these programs.

    Args:
        partners: Partners per thread (undirected edges in the comm graph).
            These programs' huge per-address reuse (Table 2: 493 and 854
            references per shared address) forces *few* partners in the
            scaled address space: a thread's whole shared footprint is only
            a couple of words.
        affinity: Dirichlet concentration over a thread's partner channels;
            smaller values mean more skew.
        write_prob: Probability a mailbox run is a write run.
    """

    def __init__(
        self,
        partners: int = 2,
        affinity: float | None = 0.5,
        write_prob: float = 0.5,
    ) -> None:
        check_positive("partners", partners)
        self.partners = partners
        self.affinity = affinity
        self.write_prob = write_prob

    def _partner_graph(self, ctx: BuildContext) -> list[set[int]]:
        """Random undirected partner sets, at least one partner each."""
        t = ctx.num_threads
        neighbours: list[set[int]] = [set() for _ in range(t)]
        for tid in range(t):
            want = min(self.partners, t - 1)
            while len(neighbours[tid]) < want:
                other = int(ctx.rng.integers(0, t))
                if other != tid:
                    neighbours[tid].add(other)
                    neighbours[other].add(tid)
        return neighbours

    def build(self, ctx: BuildContext) -> list[ThreadRecipe]:
        """Build the partner graph and mailbox regions, then the recipes."""
        t = ctx.num_threads
        neighbours = self._partner_graph(ctx)
        degree_mean = max(1.0, float(np.mean([len(n) for n in neighbours])))
        box_size = ctx.footprint(ctx.mean_shared_refs / degree_mean)

        mailboxes: dict[tuple[int, int], Region] = {}
        for tid in range(t):
            for other in sorted(neighbours[tid]):
                key = (min(tid, other), max(tid, other))
                if key not in mailboxes:
                    mailboxes[key] = ctx.space.allocate(
                        f"mbox-{key[0]}-{key[1]}", box_size
                    )

        privates = _private_regions(ctx)
        recipes = []
        for tid in range(t):
            partners = sorted(neighbours[tid])
            weights = _dirichlet_weights(ctx.rng, len(partners), self.affinity)
            channels = []
            for other, w in zip(partners, weights):
                key = (min(tid, other), max(tid, other))
                box = mailboxes[key]
                span = ctx.span_for(box)
                channels.append(
                    PoolChannel(
                        region=box,
                        weight=max(float(w), 1e-9),
                        write_prob=self.write_prob,
                        mean_run=ctx.mean_run_for(span),
                        span=span,
                        run_level_writes=True,
                    )
                )
            recipes.append(_base_recipe(ctx, tid, channels, privates[tid]))
        return recipes
