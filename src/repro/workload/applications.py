"""The fourteen applications, reconstructed.

One :class:`AppSpec` per program in the paper's Table 1/2, pairing the
published calibration targets with the access pattern (and knobs) that
reconstructs the program's sharing structure, plus the scaled cache size the
paper's §3.2 assigns it.

The only free parameter a caller normally touches is ``scale``: thread
lengths in the paper are 0.19–3.0 *million* instructions; ``scale`` maps
them down (default 1/250, i.e. 0.004 per paper-table thousand) while
preserving all relative quantities.  Cache sizes returned by
:attr:`AppSpec.cache_words` are pre-scaled to match (the paper itself scaled
caches with data-set size, §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.stream import TraceSet
from repro.workload.address_space import AddressSpace
from repro.workload.generator import generate_trace_set
from repro.workload.patterns import (
    AccessPattern,
    AllSharePattern,
    BarrierPhasePattern,
    BuildContext,
    MigratoryPattern,
    PartitionedPattern,
    RandomCommPattern,
)
from repro.workload.shaping import shaped_lengths
from repro.workload.targets import AppTargets, Grain, target_for
from repro.util.rng import RngStreams
from repro.util.validate import check_positive

__all__ = [
    "AppSpec",
    "build_calibrated",
    "APPLICATIONS",
    "application_names",
    "coarse_names",
    "medium_names",
    "spec_for",
    "build_application",
    "build_suite",
    "DEFAULT_SCALE",
]

#: Default thread-length scale: paper-table thousands -> instructions.
#: 0.004 * 1000 = 4 instructions per paper-kilo-instruction, i.e. traces are
#: 1/250 of the paper's, keeping full-suite simulation tractable in Python.
DEFAULT_SCALE = 0.004

# Words in the scaled per-processor cache.  The paper uses 32 KB for the
# coarse-grain programs plus Health and FFT, 64 KB for the other
# medium-grain programs (§3.2); scaled 1/32 of the paper's word counts here
# so the cache-to-footprint ratio stays realistic for the scaled traces:
# several threads' working sets overflow the cache (conflict misses appear,
# as in the paper's stressed configurations) while a single thread's does
# not.
_CACHE_32KB_SCALED = 256
_CACHE_64KB_SCALED = 512


@dataclass(frozen=True)
class AppSpec:
    """A buildable application: published targets + reconstruction recipe."""

    targets: AppTargets
    pattern: AccessPattern
    cache_words: int

    @property
    def name(self) -> str:
        return self.targets.name

    @property
    def num_threads(self) -> int:
        return self.targets.num_threads


def _spec(name: str, pattern: AccessPattern, cache_words: int) -> AppSpec:
    return AppSpec(targets=target_for(name), pattern=pattern, cache_words=cache_words)


# Pattern knobs per application.  The uniformly-sharing programs (the whole
# coarse-grain suite plus Grav, Patch and Gauss) use read-share/write-local
# patterns whose pairwise deviation is thread-length-driven, matching their
# low Table 2 deviations; the skewed medium-grain rows (Fullconn, Health:
# 89-134%) use sparse partner graphs with Dirichlet-skewed weights, and the
# migratory pair (FFT, Vandermonde: 85-243%) sparse chunk ownership.
APPLICATIONS: tuple[AppSpec, ...] = (
    _spec("LocusRoute", PartitionedPattern(), _CACHE_32KB_SCALED),
    _spec("Water", PartitionedPattern(), _CACHE_32KB_SCALED),
    _spec("MP3D", PartitionedPattern(), _CACHE_32KB_SCALED),
    _spec("Cholesky", PartitionedPattern(), _CACHE_32KB_SCALED),
    _spec("Barnes-Hut", BarrierPhasePattern(), _CACHE_32KB_SCALED),
    _spec("Pverify", PartitionedPattern(), _CACHE_32KB_SCALED),
    _spec("Topopt", PartitionedPattern(), _CACHE_32KB_SCALED),
    _spec("Fullconn", RandomCommPattern(partners=2, affinity=0.6), _CACHE_64KB_SCALED),
    _spec("Grav", BarrierPhasePattern(), _CACHE_64KB_SCALED),
    _spec("Health", RandomCommPattern(partners=2, affinity=0.3), _CACHE_32KB_SCALED),
    _spec("Patch", BarrierPhasePattern(), _CACHE_64KB_SCALED),
    _spec("Vandermonde", MigratoryPattern(owners_per_chunk=2, write_prob=0.8),
          _CACHE_64KB_SCALED),
    _spec("FFT", MigratoryPattern(owners_per_chunk=3, write_prob=0.75),
          _CACHE_32KB_SCALED),
    _spec("Gauss", AllSharePattern(), _CACHE_64KB_SCALED),
)

_SPEC_BY_NAME = {spec.name.lower(): spec for spec in APPLICATIONS}


def application_names() -> list[str]:
    """Names of all fourteen applications, coarse grain first."""
    return [spec.name for spec in APPLICATIONS]


def coarse_names() -> list[str]:
    """Names of the seven coarse-grain applications."""
    return [s.name for s in APPLICATIONS if s.targets.grain is Grain.COARSE]


def medium_names() -> list[str]:
    """Names of the seven medium-grain applications."""
    return [s.name for s in APPLICATIONS if s.targets.grain is Grain.MEDIUM]


def spec_for(name: str) -> AppSpec:
    """Look up an application spec by (case-insensitive) name."""
    key = name.lower()
    if key == "locus":
        key = "locusroute"
    try:
        return _SPEC_BY_NAME[key]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {', '.join(application_names())}"
        ) from None


def _build_once(
    spec: AppSpec,
    lengths,
    streams: RngStreams,
    run_multiplier: float,
    pool_multiplier: float,
) -> TraceSet:
    ctx = BuildContext(
        targets=spec.targets,
        lengths=lengths,
        space=AddressSpace(),
        rng=streams.get("structure"),
        run_multiplier=run_multiplier,
        pool_multiplier=pool_multiplier,
    )
    recipes = spec.pattern.build(ctx)
    return generate_trace_set(
        spec.targets.name, recipes, lambda tid: streams.get("thread", tid)
    )


def _clip(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


def build_calibrated(
    targets: AppTargets,
    pattern: AccessPattern,
    mean_instructions: float,
    streams: RngStreams,
) -> TraceSet:
    """Generate a trace set for arbitrary targets, with auto-calibration.

    The shared builder under :func:`build_application` and
    :func:`repro.workload.custom.build_custom_workload`: draws shaped
    thread lengths, then runs a short deterministic fixed-point loop —
    build, measure the two coupled characteristics that sizing cannot
    predict analytically (the shared-reference percentage, i.e.
    multi-thread coverage of the shared regions, and the references per
    shared address), adjust the region-size multiplier, rebuild.  Three
    refinement rounds land inside the calibration tolerances (see
    :mod:`repro.workload.calibration`).
    """
    check_positive("mean_instructions", mean_instructions)
    spec = AppSpec(targets=targets, pattern=pattern, cache_words=0)
    lengths = shaped_lengths(
        streams.get("lengths"),
        targets.num_threads,
        mean_instructions,
        targets.thread_length_cv,
        floor=32,
    )

    # Local import: calibration imports this module's types' siblings.
    from repro.trace.analysis import TraceSetAnalysis

    run_mult, pool_mult = 1.0, 1.0
    trace_set = _build_once(spec, lengths, streams, run_mult, pool_mult)
    for _ in range(3):
        analysis = TraceSetAnalysis(trace_set)
        measured_pct = analysis.percent_shared_refs.mean
        measured_rpsa = analysis.refs_per_shared_address.mean
        pct_ok = abs(measured_pct - targets.shared_refs_pct) <= 6.0
        rpsa_ratio = measured_rpsa / targets.refs_per_shared_addr
        rpsa_ok = 0.6 <= rpsa_ratio <= 1.6
        if pct_ok and rpsa_ok:
            break
        if not rpsa_ok and measured_rpsa > 0:
            # Reuse scales inversely with region size: too-shallow reuse
            # means regions are too large (damped multiplicative update).
            pool_mult *= _clip(rpsa_ratio, 0.25, 4.0) ** 0.8
        elif not pct_ok:
            # Shared% low with reuse on target: addresses are single-
            # touched; shrink regions to force overlap.
            shortfall = max(measured_pct, 1.0) / targets.shared_refs_pct
            pool_mult *= _clip(shortfall**1.0, 0.2, 1.2)
        trace_set = _build_once(spec, lengths, streams, run_mult, pool_mult)
    return trace_set


def build_application(
    name: str, *, scale: float = DEFAULT_SCALE, seed: int = 0
) -> TraceSet:
    """Generate the synthetic trace set of one of the paper's applications.

    Args:
        name: Application name (case-insensitive; "Locus" accepted).
        scale: Thread-length scale relative to the paper's Table 2 values
            (in thousands of instructions); 0.004 means a paper thread of
            1055k instructions becomes 4220 instructions.
        seed: Root seed; every structural and per-thread draw derives from
            it, so equal (name, scale, seed) always yields equal traces.

    Returns:
        A :class:`~repro.trace.stream.TraceSet` whose name is the
        application name.  See :func:`build_calibrated` for the
        auto-calibration behaviour.
    """
    check_positive("scale", scale)
    spec = spec_for(name)
    targets = spec.targets
    streams = RngStreams(seed).child("workload", targets.name, f"scale={scale}")
    return build_calibrated(
        targets, spec.pattern, targets.thread_length_mean_k * 1000.0 * scale,
        streams,
    )


def build_suite(
    *, scale: float = DEFAULT_SCALE, seed: int = 0, names: list[str] | None = None
) -> dict[str, TraceSet]:
    """Generate trace sets for the whole suite (or a named subset)."""
    chosen = names if names is not None else application_names()
    return {name: build_application(name, scale=scale, seed=seed) for name in chosen}
