"""Published characteristics of the paper's application suite.

Tables 1 and 2 of the paper define the fourteen applications by their
*measured* properties.  This module transcribes those properties as the
calibration targets the synthetic workload generators aim for:

* **Table 2 (verbatim)** — pairwise sharing mean/deviation, N-way sharing
  mean/deviation, references per shared address mean/deviation, percentage
  of shared references, and simulated thread length mean/deviation.
* **Table 1 (reconstructed)** — the paper's Table 1 lists thread counts and
  granularity; its cell values are not in the text we work from, so thread
  counts are reconstructed from constraints stated in the prose: coarse-grain
  programs have "fewer, but longer" threads, Gauss has 127 threads ("the
  largest of any application"), medium-grain threads are "more numerous",
  and the evaluation runs up to 16 processors with at least one thread per
  processor (Table 5 uses 16 processors for Water, LocusRoute, Pverify,
  Grav, FFT and Health).  For the applications whose thread
  lengths are markedly uneven (LocusRoute, Pverify, FFT, ...), counts are
  deliberately not divisible by every processor count: with t not divisible
  by p, a thread-balanced placement (RANDOM and the sharing family) carries
  an intrinsic instruction-load imbalance that LOAD-BAL does not — the
  effect behind the paper's 13-56% LOAD-BAL wins at few threads per
  processor.  The near-uniform applications (Water, MP3D, Cholesky,
  Barnes-Hut, Topopt) get divisible counts, matching the paper's finding
  that no algorithm beats any other on them.

Thread lengths are stored in *paper units* (thousands of instructions); the
application builders apply a global ``scale`` to bring simulation cost down
while preserving every relative quantity (see DESIGN.md substitution table).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Grain", "SharingShape", "AppTargets", "PAPER_TARGETS", "target_for"]


class Grain(enum.Enum):
    """Application granularity class (paper §3.1)."""

    COARSE = "coarse"
    MEDIUM = "medium"


class SharingShape(enum.Enum):
    """Qualitative sharing structure the paper attributes to the program.

    Drives which synthetic access pattern reconstructs the application:

    * ``PARTITIONED`` — work partitioned across the main shared structures;
      each thread owns a partition, with cross-partition read traffic.
    * ``BARRIER_PHASE`` — barrier-separated phases: widely read-shared data
      during computation, local writes at phase end (Barnes-Hut style).
    * ``MIGRATORY`` — shared elements accessed in long single-thread write
      runs that migrate between threads (FFT: "73% of all shared elements
      are migratory").
    * ``ALL_SHARE`` — every thread shares the same data (Gauss).
    * ``RANDOM_COMM`` — threads communicate pairwise at random through
      mailbox-like buffers (Fullconn, Health).
    """

    PARTITIONED = "partitioned"
    BARRIER_PHASE = "barrier-phase"
    MIGRATORY = "migratory"
    ALL_SHARE = "all-share"
    RANDOM_COMM = "random-comm"


@dataclass(frozen=True)
class AppTargets:
    """Calibration targets for one application.

    Attributes:
        name: Application name as the paper spells it.
        grain: Coarse or medium granularity.
        domain: Problem domain (Table 1 prose).
        num_threads: Thread count (reconstructed; see module docstring).
        shape: Qualitative sharing structure.
        pairwise_sharing_mean_k: Table 2 pairwise sharing mean, in thousands.
        pairwise_sharing_dev_pct: Table 2 pairwise sharing Dev(%).
        nway_sharing_mean_k: Table 2 N-way sharing mean, in thousands.
        nway_sharing_dev_pct: Table 2 N-way sharing Dev(%).
        refs_per_shared_addr: Table 2 references per shared address (mean).
        refs_per_shared_addr_dev_pct: Table 2 same, Dev(%).
        shared_refs_pct: Table 2 percentage of shared references.
        thread_length_mean_k: Table 2 simulated thread length mean, in
            thousands of instructions.
        thread_length_dev_pct: Table 2 thread length Dev(%).
    """

    name: str
    grain: Grain
    domain: str
    num_threads: int
    shape: SharingShape
    pairwise_sharing_mean_k: float
    pairwise_sharing_dev_pct: float
    nway_sharing_mean_k: float
    nway_sharing_dev_pct: float
    refs_per_shared_addr: float
    refs_per_shared_addr_dev_pct: float
    shared_refs_pct: float
    thread_length_mean_k: float
    thread_length_dev_pct: float

    @property
    def is_coarse(self) -> bool:
        return self.grain is Grain.COARSE

    @property
    def thread_length_cv(self) -> float:
        """Coefficient of variation of thread length (Dev% / 100)."""
        return self.thread_length_dev_pct / 100.0


# Table 2 of the paper, one row per application, coarse grain first.
PAPER_TARGETS: tuple[AppTargets, ...] = (
    AppTargets(
        name="LocusRoute", grain=Grain.COARSE, domain="VLSI standard cell router",
        num_threads=24, shape=SharingShape.PARTITIONED,
        pairwise_sharing_mean_k=527, pairwise_sharing_dev_pct=14.0,
        nway_sharing_mean_k=7911, nway_sharing_dev_pct=4.6,
        refs_per_shared_addr=15, refs_per_shared_addr_dev_pct=22.5,
        shared_refs_pct=57.4,
        thread_length_mean_k=1055, thread_length_dev_pct=14.6,
    ),
    AppTargets(
        name="Water", grain=Grain.COARSE, domain="water molecule dynamics",
        num_threads=16, shape=SharingShape.PARTITIONED,
        pairwise_sharing_mean_k=202, pairwise_sharing_dev_pct=13.9,
        nway_sharing_mean_k=2986, nway_sharing_dev_pct=1.6,
        refs_per_shared_addr=23, refs_per_shared_addr_dev_pct=2.8,
        shared_refs_pct=71.7,
        thread_length_mean_k=467, thread_length_dev_pct=2.4,
    ),
    AppTargets(
        name="MP3D", grain=Grain.COARSE, domain="rarefied hypersonic flow",
        num_threads=16, shape=SharingShape.PARTITIONED,
        pairwise_sharing_mean_k=897, pairwise_sharing_dev_pct=0.8,
        nway_sharing_mean_k=13473, nway_sharing_dev_pct=0.0,
        refs_per_shared_addr=24, refs_per_shared_addr_dev_pct=0.0,
        shared_refs_pct=82.6,
        thread_length_mean_k=1674, thread_length_dev_pct=0.9,
    ),
    AppTargets(
        name="Cholesky", grain=Grain.COARSE, domain="sparse Cholesky factorization",
        num_threads=16, shape=SharingShape.PARTITIONED,
        pairwise_sharing_mean_k=2008, pairwise_sharing_dev_pct=1.8,
        nway_sharing_mean_k=42264, nway_sharing_dev_pct=0.2,
        refs_per_shared_addr=24, refs_per_shared_addr_dev_pct=3.7,
        shared_refs_pct=17.1,
        thread_length_mean_k=2994, thread_length_dev_pct=0.0,
    ),
    AppTargets(
        name="Barnes-Hut", grain=Grain.COARSE, domain="galaxy evolution (N-body)",
        num_threads=16, shape=SharingShape.BARRIER_PHASE,
        pairwise_sharing_mean_k=349, pairwise_sharing_dev_pct=6.9,
        nway_sharing_mean_k=5236, nway_sharing_dev_pct=5.4,
        refs_per_shared_addr=8, refs_per_shared_addr_dev_pct=0.0,
        shared_refs_pct=58.6,
        thread_length_mean_k=597, thread_length_dev_pct=7.0,
    ),
    AppTargets(
        name="Pverify", grain=Grain.COARSE, domain="boolean circuit equivalence",
        num_threads=24, shape=SharingShape.PARTITIONED,
        pairwise_sharing_mean_k=700, pairwise_sharing_dev_pct=14.7,
        nway_sharing_mean_k=10508, nway_sharing_dev_pct=2.7,
        refs_per_shared_addr=98, refs_per_shared_addr_dev_pct=26.7,
        shared_refs_pct=91.7,
        thread_length_mean_k=1095, thread_length_dev_pct=22.8,
    ),
    AppTargets(
        name="Topopt", grain=Grain.COARSE, domain="VLSI topological optimization",
        num_threads=16, shape=SharingShape.PARTITIONED,
        pairwise_sharing_mean_k=1238, pairwise_sharing_dev_pct=9.7,
        nway_sharing_mean_k=9988, nway_sharing_dev_pct=31.5,
        refs_per_shared_addr=611, refs_per_shared_addr_dev_pct=7.3,
        shared_refs_pct=50.7,
        thread_length_mean_k=2934, thread_length_dev_pct=0.0,
    ),
    AppTargets(
        name="Fullconn", grain=Grain.MEDIUM, domain="fully connected random communication",
        num_threads=36, shape=SharingShape.RANDOM_COMM,
        pairwise_sharing_mean_k=63, pairwise_sharing_dev_pct=88.8,
        nway_sharing_mean_k=5628, nway_sharing_dev_pct=1.2,
        refs_per_shared_addr=493, refs_per_shared_addr_dev_pct=92.6,
        shared_refs_pct=95.6,
        thread_length_mean_k=974, thread_length_dev_pct=6.1,
    ),
    AppTargets(
        name="Grav", grain=Grain.MEDIUM, domain="Barnes-Hut clustering (Presto)",
        num_threads=40, shape=SharingShape.BARRIER_PHASE,
        pairwise_sharing_mean_k=42, pairwise_sharing_dev_pct=47.0,
        nway_sharing_mean_k=2353, nway_sharing_dev_pct=26.1,
        refs_per_shared_addr=43, refs_per_shared_addr_dev_pct=35.4,
        shared_refs_pct=98.2,
        thread_length_mean_k=763, thread_length_dev_pct=38.9,
    ),
    AppTargets(
        name="Health", grain=Grain.MEDIUM, domain="distributed health-care simulation",
        num_threads=48, shape=SharingShape.RANDOM_COMM,
        pairwise_sharing_mean_k=71, pairwise_sharing_dev_pct=133.7,
        nway_sharing_mean_k=6479, nway_sharing_dev_pct=39.6,
        refs_per_shared_addr=854, refs_per_shared_addr_dev_pct=189.7,
        shared_refs_pct=93.5,
        thread_length_mean_k=1208, thread_length_dev_pct=95.2,
    ),
    AppTargets(
        name="Patch", grain=Grain.MEDIUM, domain="radiosity (graphics)",
        num_threads=56, shape=SharingShape.BARRIER_PHASE,
        pairwise_sharing_mean_k=12, pairwise_sharing_dev_pct=32.2,
        nway_sharing_mean_k=9227, nway_sharing_dev_pct=0.8,
        refs_per_shared_addr=73, refs_per_shared_addr_dev_pct=22.1,
        shared_refs_pct=97.4,
        thread_length_mean_k=488, thread_length_dev_pct=59.1,
    ),
    AppTargets(
        name="Vandermonde", grain=Grain.MEDIUM, domain="matrix operation sequence",
        num_threads=40, shape=SharingShape.MIGRATORY,
        pairwise_sharing_mean_k=39, pairwise_sharing_dev_pct=242.6,
        nway_sharing_mean_k=2422, nway_sharing_dev_pct=64.7,
        refs_per_shared_addr=1647, refs_per_shared_addr_dev_pct=80.9,
        shared_refs_pct=98.7,
        thread_length_mean_k=1819, thread_length_dev_pct=80.3,
    ),
    AppTargets(
        name="FFT", grain=Grain.MEDIUM, domain="fast Fourier transform",
        num_threads=48, shape=SharingShape.MIGRATORY,
        pairwise_sharing_mean_k=3, pairwise_sharing_dev_pct=84.5,
        nway_sharing_mean_k=346, nway_sharing_dev_pct=3.3,
        refs_per_shared_addr=42, refs_per_shared_addr_dev_pct=69.2,
        shared_refs_pct=72.4,
        thread_length_mean_k=191, thread_length_dev_pct=187.6,
    ),
    AppTargets(
        name="Gauss", grain=Grain.MEDIUM, domain="gaussian elimination",
        num_threads=127, shape=SharingShape.ALL_SHARE,
        pairwise_sharing_mean_k=52, pairwise_sharing_dev_pct=41.2,
        nway_sharing_mean_k=105072, nway_sharing_dev_pct=2.8,
        refs_per_shared_addr=26, refs_per_shared_addr_dev_pct=10.5,
        shared_refs_pct=95.0,
        thread_length_mean_k=210, thread_length_dev_pct=84.6,
    ),
)

_BY_NAME = {t.name.lower(): t for t in PAPER_TARGETS}


def target_for(name: str) -> AppTargets:
    """Look up the calibration targets of an application by name.

    Matching is case-insensitive; the paper itself spells LocusRoute both
    "LocusRoute" and "Locusroute"/"Locus".
    """
    key = name.lower()
    if key == "locus":  # the paper's Table 5 shorthand
        key = "locusroute"
    try:
        return _BY_NAME[key]
    except KeyError:
        known = ", ".join(t.name for t in PAPER_TARGETS)
        raise KeyError(f"unknown application {name!r}; known: {known}") from None
