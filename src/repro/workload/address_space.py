"""Address-space layout for synthetic applications.

Each synthetic application owns a flat word-addressed space carved into
disjoint regions: a shared segment (further carved per pattern into
partitions, pools or mailboxes) and one private segment per thread.
Regions are aligned to cache-block boundaries so that a shared region and a
private region never share a cache block — the synthetic suite, like the
paper's restructured applications, is free of false sharing by
construction (§3.1 footnote).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validate import check_positive, check_power_of_two

__all__ = ["Region", "AddressSpace"]


@dataclass(frozen=True)
class Region:
    """A contiguous, half-open range of word addresses ``[start, start+size)``."""

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"region start must be >= 0, got {self.start}")
        if self.size <= 0:
            raise ValueError(f"region size must be > 0, got {self.size}")

    @property
    def end(self) -> int:
        return self.start + self.size

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def addr(self, offset: int) -> int:
        """Absolute address of ``offset`` within the region (bounds-checked)."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside region of size {self.size}")
        return self.start + offset

    def addrs(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`addr` without per-element bounds checks.

        Offsets must already be in ``[0, size)``; generators guarantee this
        by taking offsets modulo the region size.
        """
        return self.start + offsets

    def split(self, parts: int) -> list["Region"]:
        """Split into ``parts`` near-equal contiguous sub-regions.

        Every sub-region is non-empty; requires ``size >= parts``.
        """
        check_positive("parts", parts)
        if self.size < parts:
            raise ValueError(f"cannot split {self.size} words into {parts} parts")
        bounds = np.linspace(0, self.size, parts + 1).astype(int)
        return [
            Region(self.start + int(lo), int(hi - lo))
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]


class AddressSpace:
    """Bump allocator of block-aligned regions in a word-addressed space."""

    def __init__(self, block_words: int = 4) -> None:
        check_power_of_two("block_words", block_words)
        self.block_words = block_words
        self._next = 0
        self._regions: list[tuple[str, Region]] = []

    def allocate(self, label: str, words: int) -> Region:
        """Allocate a fresh block-aligned region of exactly ``words`` words.

        The region *starts* on a block boundary and the allocator advances
        by a whole number of blocks, so two regions never share a cache
        block (no false sharing), but the region's usable size is exactly
        what was asked for — shared pools smaller than a block are common
        in scaled-down workloads.
        """
        check_positive("words", words)
        region = Region(self._next, words)
        self._next += -(-words // self.block_words) * self.block_words  # round up
        self._regions.append((label, region))
        return region

    @property
    def total_words(self) -> int:
        """Total words allocated so far (the application's footprint)."""
        return self._next

    @property
    def regions(self) -> list[tuple[str, Region]]:
        """All allocations as (label, region), in allocation order."""
        return list(self._regions)

    def __repr__(self) -> str:
        return (
            f"AddressSpace(block_words={self.block_words}, "
            f"allocated={self.total_words} words in {len(self._regions)} regions)"
        )
