"""Declarative user-defined workloads.

The fourteen paper applications are fixed; this module lets a downstream
user define *new* synthetic applications with the same machinery — the
calibrated generation pipeline, the sharing patterns, the whole placement
and simulation stack — from a handful of natural parameters:

    from repro.workload import CustomWorkloadSpec, build_custom_workload
    spec = CustomWorkloadSpec(
        name="my-app",
        num_threads=24,
        mean_thread_length=5000,
        thread_length_dev_pct=40.0,
        shared_refs_pct=80.0,
        refs_per_shared_addr=30.0,
    )
    traces = build_custom_workload(spec, seed=0)

The generated traces hit the requested shared-reference percentage and
per-address reuse via the same fixed-point calibration the paper suite
uses, and any :class:`~repro.workload.patterns.AccessPattern` can be
plugged in for the sharing structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.stream import TraceSet
from repro.workload.applications import build_calibrated
from repro.workload.patterns import AccessPattern, PartitionedPattern
from repro.workload.targets import AppTargets, Grain, SharingShape
from repro.util.rng import RngStreams
from repro.util.validate import check_positive, check_range

__all__ = ["CustomWorkloadSpec", "build_custom_workload"]


@dataclass(frozen=True)
class CustomWorkloadSpec:
    """A user-defined synthetic application.

    Attributes:
        name: Application name (labels the trace set).
        num_threads: Threads to generate (>= 2).
        mean_thread_length: Mean thread length in instructions.
        thread_length_dev_pct: Thread-length deviation (the paper's Dev%);
            0 gives perfectly uniform threads.
        shared_refs_pct: Percentage of data references to shared data.
        refs_per_shared_addr: Target per-thread references per shared
            address (temporal locality of the shared footprint).
        pattern: Sharing structure; defaults to the read-share/write-local
            partitioned pattern.
        grain: Cosmetic granularity label.
    """

    name: str
    num_threads: int
    mean_thread_length: float
    thread_length_dev_pct: float = 0.0
    shared_refs_pct: float = 60.0
    refs_per_shared_addr: float = 20.0
    pattern: AccessPattern = field(default_factory=PartitionedPattern)
    grain: Grain = Grain.MEDIUM

    def __post_init__(self) -> None:
        if self.num_threads < 2:
            raise ValueError(
                f"num_threads must be >= 2 (sharing needs partners), got "
                f"{self.num_threads}"
            )
        check_positive("mean_thread_length", self.mean_thread_length)
        check_positive("thread_length_dev_pct", self.thread_length_dev_pct,
                       allow_zero=True)
        check_range("shared_refs_pct", self.shared_refs_pct, 0.1, 100.0)
        check_positive("refs_per_shared_addr", self.refs_per_shared_addr)

    def to_targets(self) -> AppTargets:
        """The equivalent calibration-targets row.

        Pairwise/N-way sharing columns are not user inputs (they emerge
        from the pattern), so they are recorded as zero.
        """
        return AppTargets(
            name=self.name,
            grain=self.grain,
            domain="user-defined",
            num_threads=self.num_threads,
            shape=SharingShape.PARTITIONED,
            pairwise_sharing_mean_k=0.0,
            pairwise_sharing_dev_pct=0.0,
            nway_sharing_mean_k=0.0,
            nway_sharing_dev_pct=0.0,
            refs_per_shared_addr=self.refs_per_shared_addr,
            refs_per_shared_addr_dev_pct=0.0,
            shared_refs_pct=self.shared_refs_pct,
            thread_length_mean_k=self.mean_thread_length / 1000.0,
            thread_length_dev_pct=self.thread_length_dev_pct,
        )


def build_custom_workload(spec: CustomWorkloadSpec, *, seed: int = 0) -> TraceSet:
    """Generate a user-defined application (calibrated, deterministic)."""
    streams = RngStreams(seed).child("custom-workload", spec.name)
    return build_calibrated(
        spec.to_targets(), spec.pattern, spec.mean_thread_length, streams
    )
