"""Synthetic reconstruction of the paper's fourteen-application suite.

The paper's traces (MPtrace on a Sequent Symmetry) are unavailable; this
package rebuilds the workload from its *published* characteristics — the
thread counts and lengths of Table 1, every column of Table 2, and the
qualitative sharing structures §4.2 describes.  See DESIGN.md's
substitution table for why this preserves the behaviours the paper's
result depends on.

Typical use::

    from repro.workload import build_application
    traces = build_application("FFT", scale=0.004, seed=0)
"""

from repro.workload.address_space import AddressSpace, Region
from repro.workload.applications import (
    APPLICATIONS,
    AppSpec,
    DEFAULT_SCALE,
    application_names,
    build_application,
    build_suite,
    coarse_names,
    medium_names,
    spec_for,
)
from repro.workload.calibration import (
    CalibrationCheck,
    CalibrationReport,
    DeviationBand,
    calibrate,
    deviation_band,
)
from repro.workload.custom import CustomWorkloadSpec, build_custom_workload
from repro.workload.channels import PoolChannel
from repro.workload.generator import ThreadRecipe, generate_thread, generate_trace_set
from repro.workload.patterns import (
    AccessPattern,
    AllSharePattern,
    BarrierPhasePattern,
    BuildContext,
    MigratoryPattern,
    PartitionedPattern,
    RandomCommPattern,
)
from repro.workload.shaping import distribute_gaps, run_lengths, shaped_lengths
from repro.workload.streaming import (
    StreamScenario,
    million_reference_scenario,
    spill_streaming_set,
)
from repro.workload.targets import (
    AppTargets,
    Grain,
    PAPER_TARGETS,
    SharingShape,
    target_for,
)

__all__ = [
    "AddressSpace",
    "Region",
    "AppSpec",
    "APPLICATIONS",
    "DEFAULT_SCALE",
    "application_names",
    "coarse_names",
    "medium_names",
    "spec_for",
    "build_application",
    "build_suite",
    "CustomWorkloadSpec",
    "build_custom_workload",
    "CalibrationCheck",
    "CalibrationReport",
    "DeviationBand",
    "calibrate",
    "deviation_band",
    "PoolChannel",
    "ThreadRecipe",
    "generate_thread",
    "generate_trace_set",
    "AccessPattern",
    "PartitionedPattern",
    "BarrierPhasePattern",
    "MigratoryPattern",
    "AllSharePattern",
    "RandomCommPattern",
    "BuildContext",
    "shaped_lengths",
    "distribute_gaps",
    "run_lengths",
    "StreamScenario",
    "million_reference_scenario",
    "spill_streaming_set",
    "AppTargets",
    "Grain",
    "SharingShape",
    "PAPER_TARGETS",
    "target_for",
]
