"""The run journal: an append-only JSONL log of engine events.

Every job transition the engine observes — queued, started, cache-hit,
resumed, retrying, finished, failed — is one JSON object per line, flushed
immediately, so a run can be watched with ``tail -f`` and a killed run
leaves a readable prefix.  :meth:`RunJournal.completed_jobs` reads that
prefix back to drive ``--resume``: jobs whose completion the journal
confirms are skipped on the next run.

The journal is written only by the coordinating process (workers report
back over the pool's result channel), so lines never interleave.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["RunJournal", "COMPLETED_EVENTS"]

#: Events that mark a job as done (its result exists in the store/memo).
COMPLETED_EVENTS = frozenset({"finished", "cache-hit", "resumed"})


class RunJournal:
    """Collects engine events in memory and, optionally, appends them to a
    JSONL file.

    Args:
        path: Journal file to append to, or None for in-memory only (the
            event list still feeds the
            :class:`~repro.exec.summary.RunSummary`).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        self._stream = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")

    def record(self, event: str, job_id: str | None = None, **fields) -> dict:
        """Append one event (None-valued fields are dropped)."""
        entry: dict = {"event": event, "time": round(time.time(), 6)}
        if job_id is not None:
            entry["job"] = job_id
        entry.update((k, v) for k, v in fields.items() if v is not None)
        self.events.append(entry)
        if self._stream is not None:
            self._stream.write(json.dumps(entry, sort_keys=True) + "\n")
            self._stream.flush()
        return entry

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading a (possibly interrupted) journal back
    # ------------------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """All parseable events in a journal file.

        A run killed mid-write leaves a truncated final line; malformed
        lines are skipped rather than raised, so resuming from a crashed
        run always works.
        """
        events = []
        with Path(path).open("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and "event" in entry:
                    events.append(entry)
        return events

    @classmethod
    def completed_jobs(cls, path: str | Path) -> set[str]:
        """Job ids the journal confirms complete (finished, cache-hit or
        resumed in any earlier run).  Missing journals yield the empty set."""
        path = Path(path)
        if not path.exists():
            return set()
        return {
            entry["job"]
            for entry in cls.read(path)
            if entry["event"] in COMPLETED_EVENTS and "job" in entry
        }
