"""The run journal: an append-only JSONL log of engine events.

Every job transition the engine observes — queued, started, cache-hit,
resumed, retrying, finished, failed, interrupted — is one JSON object per
line, flushed immediately, so a run can be watched with ``tail -f`` and a
killed run leaves a readable prefix.  :meth:`RunJournal.completed_jobs`
reads that prefix back to drive ``--resume``: jobs whose completion the
journal confirms are skipped on the next run.

Crash-safety is two-layered:

* **On open**, a journal being appended to is first healed: a process
  killed mid-write leaves a torn final line (no trailing newline), which
  is truncated away so the file returns to a clean line boundary before
  new events land after it (:meth:`RunJournal.recover_torn_tail`).
* **On read**, any malformed line that survives anyway (e.g. garbage
  appended by a third party) is skipped rather than raised, so resuming
  from a damaged journal always works.

The journal is written by the coordinating process (workers report back
over the pool's result channel); the engine's watchdog thread also
records events, so appends are serialized under a lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Iterator

from repro import faults

__all__ = ["RunJournal", "JournalTail", "COMPLETED_EVENTS",
           "TERMINAL_EVENTS"]

#: Events that mark a job as done (its result exists in the store/memo).
COMPLETED_EVENTS = frozenset({"finished", "cache-hit", "resumed"})

#: Events that mark the whole run as over (the journal will be closed).
TERMINAL_EVENTS = frozenset({"run-end", "run-interrupted"})


class JournalTail:
    """Incremental reader of a (possibly live) journal file.

    Safe against everything a concurrently-written JSONL file can do:

    * **Torn tails** — a line the writer has not finished (no trailing
      newline yet) is never parsed: the read offset only ever advances
      past *complete* lines, so a partial fragment is simply re-read on
      the next poll until its newline lands.  If the writer dies and a
      reopening :class:`RunJournal` truncates the torn tail away
      (:meth:`RunJournal.recover_torn_tail`) — even if equally-sized new
      bytes immediately replace it — nothing already yielded is
      affected and nothing is duplicated.
    * **Concurrent appends** — each :meth:`poll` picks up exactly the
      lines completed since the last one; the writer's per-line flush
      means a complete event is visible atomically.
    * **Malformed lines** — third-party garbage is skipped, matching
      :meth:`RunJournal.read`.
    * **Rewrites** — a file that shrank below the last complete line
      (rotated or rewritten, which the engine never does) restarts from
      the top; only then can events repeat.

    The file is opened per poll (no held descriptor), so tailing never
    blocks a writer or pins a deleted file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0  # always just past the last complete line read

    def poll(self) -> list[dict]:
        """Every event completed since the last poll (non-blocking).

        Returns ``[]`` when there is nothing new — including when the
        file does not exist yet (a journal appears when the run starts).
        """
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return []
        if size < self._offset:
            # The file shrank below a line boundary we already consumed:
            # it was rewritten; start over.
            self._offset = 0
        if size == self._offset:
            return []
        try:
            with self.path.open("rb") as stream:
                stream.seek(self._offset)
                chunk = stream.read()
        except OSError:
            return []
        if not chunk:
            return []
        lines = chunk.split(b"\n")
        partial = lines.pop()  # torn tail: re-read once its newline lands
        self._offset += len(chunk) - len(partial)
        events = []
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                entry = json.loads(raw.decode("utf-8", errors="replace"))
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "event" in entry:
                events.append(entry)
        return events


class RunJournal:
    """Collects engine events in memory and, optionally, appends them to a
    JSONL file.

    Args:
        path: Journal file to append to, or None for in-memory only (the
            event list still feeds the
            :class:`~repro.exec.summary.RunSummary`).
        listener: Optional callable receiving every recorded event dict
            (after it is appended) — the engine wires the run observer's
            progress meter and event counters through this.  Listeners
            observe, never steer: a listener exception is swallowed so
            observability can never fail a run.
    """

    def __init__(self, path: str | Path | None = None,
                 listener=None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        self._stream = None
        self._listener = listener
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.recover_torn_tail(self.path)
            self._stream = self.path.open("a", encoding="utf-8")

    @staticmethod
    def recover_torn_tail(path: str | Path) -> int:
        """Truncate a torn final line; returns the bytes dropped.

        A coordinator killed mid-append leaves a partial JSON object with
        no trailing newline.  Cutting the file back to its last newline
        (or to empty, if no complete line exists) restores the invariant
        every append relies on: the journal is a whole number of lines.
        """
        path = Path(path)
        if not path.exists():
            return 0
        data = path.read_bytes()
        if not data or data.endswith(b"\n"):
            return 0
        keep = data.rfind(b"\n") + 1
        with open(path, "rb+") as stream:
            stream.truncate(keep)
        return len(data) - keep

    def record(self, event: str, job_id: str | None = None, **fields) -> dict:
        """Append one event (None-valued fields are dropped); thread-safe."""
        entry: dict = {"event": event, "time": round(time.time(), 6)}
        if job_id is not None:
            entry["job"] = job_id
        entry.update((k, v) for k, v in fields.items() if v is not None)
        with self._lock:
            self.events.append(entry)
            if self._stream is not None:
                line = json.dumps(entry, sort_keys=True) + "\n"
                faults.tear("journal", line, self._stream)
                if faults.split("journal", line, self._stream):
                    # An injected split-journal fault just left a torn,
                    # flushed half-line visible to any live tailer.
                    # Heal exactly as a reopening writer would: close,
                    # truncate back to the line boundary, reopen, and
                    # append the full line below.
                    self._stream.close()
                    self.recover_torn_tail(self.path)
                    self._stream = self.path.open("a", encoding="utf-8")
                self._stream.write(line)
                self._stream.flush()
        if self._listener is not None:
            # Outside the lock (a listener may log/draw at leisure) and
            # fault-isolated: observation must never break the run.
            try:
                self._listener(entry)
            except Exception:
                pass
        return entry

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading a (possibly interrupted) journal back
    # ------------------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """All parseable events in a journal file.

        A run killed mid-write leaves a truncated final line; malformed
        lines are skipped rather than raised, so resuming from a crashed
        run always works.  (One non-follow :meth:`tail` pass.)
        """
        return list(RunJournal.tail(path))

    @classmethod
    def tail(
        cls,
        path: str | Path,
        *,
        follow: bool = False,
        poll_interval: float = 0.05,
        timeout: float | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> Iterator[dict]:
        """Iterate a journal's events, optionally following a live file.

        The shared event feed under the progress meter
        (:func:`repro.obs.progress.follow_journal`) and the service's
        SSE/NDJSON job streams — one tailer, one set of torn-tail and
        concurrent-append semantics (see :class:`JournalTail`).

        Args:
            path: Journal file.  Without ``follow`` it must exist
                (``FileNotFoundError``, matching :meth:`read`); with
                ``follow`` a missing file is simply waited for.
            follow: Keep polling for appends instead of stopping at the
                current end of file.
            poll_interval: Seconds between polls while idle (follow).
            timeout: Overall budget in seconds (follow); the iterator
                ends when it elapses.
            stop: Callable checked while following; once it returns
                true, the file is drained one final time and the
                iterator ends.  (The service passes "job reached a
                terminal state"; events recorded before the state flip
                are never lost.)

        Yields:
            Parsed event dicts, in file order, each exactly once.
        """
        tailer = JournalTail(path)
        if not follow:
            if not tailer.path.exists():
                raise FileNotFoundError(str(path))
            yield from tailer.poll()
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            final = stop is not None and stop()
            events = tailer.poll()
            yield from events
            if final:
                return
            if deadline is not None and time.monotonic() >= deadline:
                return
            if not events:
                time.sleep(poll_interval)

    @classmethod
    def completed_jobs(cls, path: str | Path) -> set[str]:
        """Job ids the journal confirms complete (finished, cache-hit or
        resumed in any earlier run).  Missing journals yield the empty set."""
        path = Path(path)
        if not path.exists():
            return set()
        return {
            entry["job"]
            for entry in cls.read(path)
            if entry["event"] in COMPLETED_EVENTS and "job" in entry
        }
