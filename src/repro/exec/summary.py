"""Aggregate statistics of one engine run, derived from journal events.

:class:`RunSummary` turns the event stream into the numbers an operator
cares about: how many cells ran, hit the cache or resumed; how many retries
and failures; throughput and the p50/p95 per-job latency.  It is computed
from the same events the journal persists, so a summary can be rebuilt
from a journal file after the fact (:meth:`RunSummary.from_journal`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.journal import RunJournal

__all__ = ["RunSummary", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0-100) by linear interpolation; 0.0 if empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass(frozen=True)
class RunSummary:
    """What one engine run did, in aggregate."""

    total_jobs: int           #: planned jobs (after dedup)
    executed: int             #: simulated to completion this run
    failed: int               #: exhausted retries (reported as gaps)
    cache_hits: int           #: served from the persistent store
    resumed: int              #: skipped as journal-confirmed complete
    retries: int              #: re-submissions after a failed attempt
    workers: int              #: worker processes configured
    wall_seconds: float       #: whole-run wall clock
    p50_seconds: float        #: median per-job total latency (all attempts)
    p95_seconds: float        #: tail per-job total latency (all attempts)
    per_worker: dict = field(default_factory=dict)  #: worker pid -> jobs finished
    attempts: dict = field(default_factory=dict)  #: attempt number -> jobs finished on it

    @property
    def completed(self) -> int:
        """Jobs whose result is available (any of the three ways)."""
        return self.executed + self.cache_hits + self.resumed

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of planned jobs served without simulating."""
        if not self.total_jobs:
            return 0.0
        return (self.cache_hits + self.resumed) / self.total_jobs

    @property
    def throughput(self) -> float:
        """Completed jobs per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @classmethod
    def from_events(
        cls,
        events: list[dict],
        *,
        total_jobs: int,
        workers: int,
        wall_seconds: float,
    ) -> "RunSummary":
        """Fold an event stream into a summary.

        Latency percentiles cover each job's *total* time across all of
        its attempts: a job that failed twice and then succeeded
        contributes the sum of all three attempt durations, not just the
        final one — retries cost real wall time and the tail percentiles
        should say so.  Terminally *failed* jobs are charged the same
        way: their attempts burned the same wall clock, and silently
        dropping them would make a run full of retried-then-failed jobs
        look faster than it was.  A failed job with no recorded time at
        all (no prior ``retrying`` durations and no ``duration`` on the
        failure, e.g. a worker crash) is explicitly dropped rather than
        recorded as a zero-latency job.
        """
        counts = {"finished": 0, "failed": 0, "cache-hit": 0, "resumed": 0,
                  "retrying": 0}
        spent: dict[str, float] = {}       # job -> attempt seconds so far
        durations: list[float] = []        # total latency of finished jobs
        per_worker: dict[str, int] = {}
        attempts: dict[int, int] = {}
        for entry in events:
            kind = entry["event"]
            if kind in counts:
                counts[kind] += 1
            job = entry.get("job")
            if kind == "retrying" and job is not None and "duration" in entry:
                spent[job] = spent.get(job, 0.0) + float(entry["duration"])
            if kind == "failed":
                # Terminal failure: charge the job's accumulated retry
                # time plus the final attempt, or drop it entirely when
                # no time was ever recorded (never append a fake 0.0).
                lost = spent.pop(job, None) if job is not None else None
                if lost is not None or "duration" in entry:
                    durations.append(
                        (lost or 0.0) + float(entry.get("duration", 0.0) or 0.0)
                    )
            if kind == "finished":
                total = float(entry.get("duration", 0.0))
                if job is not None:
                    total += spent.pop(job, 0.0)
                durations.append(total)
                worker = str(entry.get("worker", "?"))
                per_worker[worker] = per_worker.get(worker, 0) + 1
                if "attempt" in entry:
                    n = int(entry["attempt"])
                    attempts[n] = attempts.get(n, 0) + 1
        return cls(
            total_jobs=total_jobs,
            executed=counts["finished"],
            failed=counts["failed"],
            cache_hits=counts["cache-hit"],
            resumed=counts["resumed"],
            retries=counts["retrying"],
            workers=workers,
            wall_seconds=wall_seconds,
            p50_seconds=percentile(durations, 50),
            p95_seconds=percentile(durations, 95),
            per_worker=dict(sorted(per_worker.items())),
            attempts=dict(sorted(attempts.items())),
        )

    @classmethod
    def from_journal(cls, path: str | Path, *, workers: int = 0) -> "RunSummary":
        """Rebuild a summary from a journal file (e.g. after a crash).

        Wall time is the span between the first and last event; the job
        total is every distinct job the journal mentions.
        """
        events = RunJournal.read(path)
        times = [e["time"] for e in events if "time" in e]
        wall = max(times) - min(times) if len(times) > 1 else 0.0
        jobs = {e["job"] for e in events if "job" in e}
        return cls.from_events(events, total_jobs=len(jobs), workers=workers,
                               wall_seconds=wall)

    def render(self) -> str:
        """The summary as aligned text (the CLI prints this to stderr)."""
        lines = [
            "Run summary",
            "===========",
            f"jobs planned        {self.total_jobs}",
            f"  executed          {self.executed}",
            f"  cache hits        {self.cache_hits}",
            f"  resumed           {self.resumed}",
            f"  failed (gaps)     {self.failed}",
            f"retries             {self.retries}",
            f"workers             {self.workers}",
            f"wall time           {self.wall_seconds:.2f} s",
            f"throughput          {self.throughput:.2f} jobs/s",
            f"cache-hit rate      {self.cache_hit_rate * 100:.1f}%",
            f"job latency p50     {self.p50_seconds:.3f} s",
            f"job latency p95     {self.p95_seconds:.3f} s",
        ]
        if self.per_worker:
            shares = ", ".join(
                f"{worker}:{count}" for worker, count in self.per_worker.items()
            )
            lines.append(f"jobs per worker     {shares}")
        if self.attempts:
            spread = ", ".join(
                f"attempt {n}:{count}" for n, count in self.attempts.items()
            )
            lines.append(f"finishes by attempt {spread}")
        return "\n".join(lines)
