"""Parallel experiment execution: jobs, engine, journal, summary.

The evaluation grid (every application x placement algorithm x machine
cell) is embarrassingly parallel; this package plans it as
content-addressed jobs (:mod:`repro.exec.jobs`), fans them out over worker
processes with per-job timeouts, retries and crash isolation
(:mod:`repro.exec.engine`), records every transition in a JSONL run
journal (:mod:`repro.exec.journal`) and aggregates the run into throughput
and latency statistics (:mod:`repro.exec.summary`).

Entry points: ``ExperimentSuite.prefetch`` for library use, and the
``repro-experiments --jobs N [--timeout S] [--journal PATH] [--resume]``
flags for the CLI.
"""

from repro.exec.engine import (
    ExecutionEngine,
    JobFailure,
    JobTimeout,
    RunReport,
    simulate_cell,
)
from repro.exec.jobs import (
    SIMULATED_SECTIONS,
    JobSpec,
    plan_full_grid,
    plan_sections,
)
from repro.exec.journal import JournalTail, RunJournal
from repro.exec.summary import RunSummary

__all__ = [
    "ExecutionEngine",
    "JobFailure",
    "JobSpec",
    "JobTimeout",
    "JournalTail",
    "RunJournal",
    "RunReport",
    "RunSummary",
    "SIMULATED_SECTIONS",
    "plan_full_grid",
    "plan_sections",
    "simulate_cell",
]
