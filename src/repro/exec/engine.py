"""The job execution engine: fan-out, hardening, journaling, resume.

:class:`ExecutionEngine` takes a planned list of
:class:`~repro.exec.jobs.JobSpec`s and completes each one exactly once:

* **Cache first.**  A cell already in the persistent
  :class:`~repro.experiments.cache.ResultStore` is a ``cache-hit``; with
  ``resume=True``, cells a previous run's journal confirms complete are
  ``resumed`` without even decoding them eagerly.
* **Fan-out.**  Remaining jobs run on a ``ProcessPoolExecutor`` with a
  configurable worker count (``workers=1`` executes inline, same code
  path, no pool).  Workers rebuild their own
  :class:`~repro.experiments.runner.ExperimentSuite` from the job's
  (scale, seed, quantum) parameters — results are deterministic by named
  RNG-stream derivation, so parallel and sequential runs are identical.
* **Hardening.**  Each attempt is bounded by a per-job timeout (SIGALRM
  inside the worker, so a runaway job cannot wedge the pool), failed
  attempts are retried with exponential backoff, and a job that exhausts
  its retries degrades to a reported gap — one bad cell never aborts the
  sweep.  A worker process dying outright (``BrokenProcessPool``) causes
  the pool to be rebuilt and in-flight innocents resubmitted.  With
  ``hang_timeout`` set, a coordinator-side **watchdog** additionally
  patrols worker heartbeats and SIGKILLs a worker whose current job has
  outlived the budget — catching hangs SIGALRM cannot (a wedged
  extension, a sleep with the alarm unavailable) — after which the
  normal crash recovery requeues the work.
* **Clean shutdown.**  SIGINT/SIGTERM interrupt the run cooperatively:
  in-flight jobs are journaled as ``interrupted``, the journal is
  flushed and closed (so ``--resume`` retries exactly those cells), and
  ``KeyboardInterrupt`` propagates to the caller.
* **Observability.**  Every transition is recorded in the
  :class:`~repro.exec.journal.RunJournal` and folded into a
  :class:`~repro.exec.summary.RunSummary`.

The worker's job execution, the store's writes and the journal's appends
carry :mod:`repro.faults` injection points, so the chaos suite can strike
any of them deterministically and assert the recovery paths above.

The default per-process suite cache is keyed by (scale, seed, quantum), so
a worker serving many jobs builds each application's traces once — but
never inherits a parent process's memoized ``TraceSet``s: the default
``spawn`` start method gives workers a fresh interpreter.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import shutil
import signal
import tempfile
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro import faults
from repro.exec.jobs import JobSpec
from repro.exec.journal import RunJournal
from repro.exec.summary import RunSummary
from repro.experiments.cache import ResultStore, result_from_arrays, result_to_arrays
from repro.util.validate import check_positive

__all__ = ["ExecutionEngine", "JobFailure", "RunReport", "JobTimeout",
           "simulate_cell"]


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its time budget."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process suite cache: (scale, seed, quantum_refs) -> ExperimentSuite.
#: Lives in the worker process; each worker rebuilds traces from the spec
#: once and reuses them across the jobs it serves.
_SUITES: dict[tuple, object] = {}


def _suite_for(scale: float, seed: int, quantum_refs: int,
               engine: str = "classic", speculate: bool = True,
               store_dir: str | None = None,
               stream_chunk_refs: int | None = None,
               topology: str | None = None):
    from repro.experiments.runner import ExperimentSuite

    key = (scale, seed, quantum_refs, engine, speculate, store_dir,
           stream_chunk_refs, topology)
    if key not in _SUITES:
        suite = ExperimentSuite(scale=scale, seed=seed,
                                quantum_refs=quantum_refs,
                                engine=engine, speculate=speculate,
                                stream_chunk_refs=stream_chunk_refs,
                                topology=topology)
        if store_dir is not None:
            # Workers hold no *writable* store (the coordinator persists
            # results and fires the store fault sites exactly once per
            # cell), but a read-only view lets a job's speculation hints
            # find completed neighbors, and the shared analysis cache
            # makes every worker compute each trace's run compression at
            # most once.  Loads never fire fault-injection sites, so
            # chaos schedules are unchanged.
            from pathlib import Path

            from repro.experiments.cache import ResultStore
            from repro.trace import analysis_cache

            suite._neighbor_store = ResultStore(store_dir)
            analysis_cache.configure(Path(store_dir) / "analysis")
        _SUITES[key] = suite
    return _SUITES[key]


def simulate_cell(payload: dict) -> dict:
    """The default job runner: simulate one cell, return flattened arrays.

    Returns :func:`~repro.experiments.cache.result_to_arrays` output (plain
    numpy arrays) rather than a rich object, matching the store's explicit
    no-pickle serialization discipline.

    When the payload asks for a probe (a metrics-collecting run), the
    cell simulates under a fresh :class:`~repro.obs.probes.SimProbe`
    whose counters are stashed for :func:`_invoke` to ship back on the
    result channel — the probe observes only; results are bit-for-bit
    identical either way.
    """
    spec = JobSpec.from_payload(payload["spec"])
    suite = _suite_for(spec.scale, spec.seed, spec.quantum_refs, spec.engine,
                       bool(payload.get("speculate", True)),
                       payload.get("store_dir"),
                       spec.stream_chunk_refs, spec.topology)
    probe = None
    if payload.get("probe"):
        from repro.obs.probes import SimProbe, stash_pending

        probe = SimProbe()
    suite.probe = probe
    try:
        result = suite.run(
            spec.app, spec.algorithm, spec.processors,
            infinite=spec.infinite, associativity=spec.associativity,
            cache_words=spec.cache_words, replicate=spec.replicate,
            neighbors=spec.neighbors,
        )
    finally:
        suite.probe = None
    if probe is not None:
        stash_pending(probe.snapshot())
    return result_to_arrays(result)


def _alarm_supported() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def _write_heartbeat(payload: dict) -> Path | None:
    """Announce the job this process is starting (for the watchdog).

    One file per worker pid: ``{"job", "pid", "started"}``.  The watchdog
    compares ``started`` against its hang budget; the file is removed when
    the attempt ends, so a missing file means the worker is idle.
    """
    directory = payload.get("heartbeat_dir")
    if not directory:
        return None
    beat = Path(directory) / f"hb-{os.getpid()}.json"
    try:
        beat.write_text(json.dumps({
            "job": payload["job"],
            "pid": os.getpid(),
            "started": time.time(),
        }), encoding="ascii")
    except OSError:  # heartbeat is best-effort; the job still runs
        return None
    return beat


def _discard_speculation() -> None:
    """Drop events a failed attempt stashed, so they cannot be
    misattributed to the worker's next job."""
    try:
        from repro.arch.delta import take_speculation
    except ImportError:  # pragma: no cover - partial install
        return
    take_speculation()


def _invoke(runner: Callable[[dict], object], payload: dict) -> dict:
    """Run one attempt under the crash/timeout harness (in the worker).

    Never raises: any outcome — success, timeout, exception — comes back
    as a structured dict, so only a hard interpreter death can break the
    pool.
    """
    delay = payload.get("delay") or 0.0
    if delay:
        time.sleep(delay)
    timeout = payload.get("timeout")
    use_alarm = bool(timeout) and _alarm_supported()
    out = {
        "job": payload["job"],
        "worker": os.getpid(),
        "attempt": payload["attempt"],
        "t_start": round(time.time(), 6),
    }
    heartbeat = _write_heartbeat(payload)
    start = time.perf_counter()
    cpu_start = time.process_time()
    previous = None
    try:
        if use_alarm:
            def _on_alarm(signum, frame):
                raise JobTimeout(f"job exceeded {timeout:g}s")

            previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            faults.fire("worker",
                        context=payload.get("label") or payload["job"])
            value = runner(payload)
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous)
        out.update(ok=True, value=value)
        # Speculation outcomes the suite stashed while running this job
        # ride the result channel to the coordinator's journal.  Drained
        # only on success: a failed attempt's events are discarded below.
        from repro.arch.delta import take_speculation

        spec_events = take_speculation()
        if spec_events:
            out["speculation"] = spec_events
        if payload.get("probe"):
            # Probe counters the runner stashed (simulate_cell) ride the
            # existing result channel back to the coordinator's registry.
            from repro.obs.probes import take_pending

            sim_metrics = take_pending()
            if sim_metrics:
                out["sim_metrics"] = sim_metrics
    except JobTimeout as exc:
        out.update(ok=False, kind="timeout", error=str(exc))
        _discard_speculation()
    except Exception as exc:
        out.update(
            ok=False,
            kind="error",
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(limit=20),
        )
        _discard_speculation()
    finally:
        # An injected crash (os._exit) skips this; the stale heartbeat is
        # then cleaned up by the watchdog's liveness check.
        if heartbeat is not None:
            try:
                heartbeat.unlink()
            except OSError:
                pass
    out["duration"] = round(time.perf_counter() - start, 6)
    out["cpu"] = round(time.process_time() - cpu_start, 6)
    return out


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # e.g. EPERM: exists but owned by someone else
        return True
    return True


class _Watchdog:
    """Coordinator thread that SIGKILLs workers whose job outlived the
    hang budget.

    SIGALRM catches most runaway jobs from inside the worker, but not a
    worker wedged where Python signal delivery cannot run (a blocking C
    call, a platform without SIGALRM).  This watchdog needs no
    cooperation from the victim: each worker writes a heartbeat file when
    it picks up a job; the watchdog patrols those files and kills any pid
    whose current job is older than ``patience`` seconds.  The kill
    surfaces as ``BrokenProcessPool`` and flows through the engine's
    normal crash recovery — rebuild the pool, resubmit the innocents,
    retry (or fail) the victim, which :meth:`ExecutionEngine._run_pool`
    attributes as kind ``hang`` via :attr:`killed`.
    """

    def __init__(self, directory: Path, patience: float,
                 journal: RunJournal) -> None:
        self.directory = Path(directory)
        self.patience = float(patience)
        self.journal = journal
        self.killed: set[str] = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._patrol, name="repro-watchdog", daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _patrol(self) -> None:
        poll = max(0.05, min(self.patience / 4.0, 1.0))
        while not self._stop.wait(poll):
            self.sweep()

    def sweep(self) -> None:
        """One patrol pass (separated from the loop for direct testing)."""
        now = time.time()
        for beat in sorted(self.directory.glob("hb-*.json")):
            try:
                info = json.loads(beat.read_text(encoding="ascii"))
                pid = int(info["pid"])
                job = str(info["job"])
                started = float(info["started"])
            except (OSError, ValueError, KeyError, TypeError):
                continue  # torn or foreign file; re-examined next pass
            if now - started <= self.patience:
                continue
            if not _pid_alive(pid):
                # The worker died on its own (e.g. an injected crash)
                # without unlinking its heartbeat; just clean up.
                try:
                    beat.unlink()
                except OSError:
                    pass
                continue
            self.killed.add(job)
            self.journal.record("watchdog-kill", job, pid=pid,
                                age=round(now - started, 3))
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:  # pragma: no cover - raced with worker exit
                pass
            try:
                beat.unlink()
            except OSError:
                pass


@dataclass(frozen=True)
class JobFailure:
    """One job that exhausted its retries — a gap in the sweep."""

    job_id: str
    label: str
    error: str
    kind: str
    attempts: int

    def __str__(self) -> str:
        return (f"{self.label} failed after {self.attempts} attempt(s) "
                f"[{self.kind}]: {self.error}")


@dataclass
class RunReport:
    """Everything one engine run produced."""

    results: dict[str, object]          #: job id -> materialized result
    failures: list[JobFailure] = field(default_factory=list)
    summary: RunSummary | None = None
    events: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def result_for(self, spec: JobSpec):
        """The result of one planned job, or None if it failed."""
        return self.results.get(spec.job_id)


class ExecutionEngine:
    """Plan-in, results-out parallel executor for simulation cells.

    Args:
        workers: Worker processes; 1 executes inline (no pool).
        timeout: Per-job attempt budget in seconds (None = unbounded).
        max_retries: Re-submissions allowed after a failed attempt.
        backoff: Base delay before retry ``n`` (``backoff * 2**(n-1)`` s,
            capped at ``max_backoff`` and jittered ±25%; see
            :meth:`_retry_delay`).
        max_backoff: Hard ceiling on any single retry delay in seconds —
            without it the exponential grows unboundedly with
            ``max_retries``.
        hang_timeout: Seconds a worker's current job may run before the
            coordinator-side watchdog SIGKILLs the worker (None, the
            default, disables the watchdog).  Unlike ``timeout`` — which
            relies on signal delivery *inside* the worker — this catches
            a worker wedged beyond cooperation.  Pool mode only (inline
            execution has no worker to kill) and requires ``SIGKILL``
            (POSIX).
        store: Persistent :class:`ResultStore`; enables cache-hits,
            resume, and persisting every computed cell.  Requires the
            default runner (it writes ``SimulationResult``s).
        journal_path: JSONL journal file (None = in-memory events only).
        resume: Skip jobs a previous journal at ``journal_path`` confirms
            complete *and* whose result is still in the store.
        job_runner: Override the work done per job (tests, other sweeps).
            Receives the payload dict, returns any picklable value.
        mp_context: Multiprocessing start method.  The default ``spawn``
            guarantees workers share nothing with the parent by fork —
            they rebuild all state from the job spec.
        observer: Optional :class:`~repro.obs.run.RunObserver`.  It is
            attached as the journal's listener (progress + event
            counters), told about every finished job (latency histogram,
            worker probe counters, one workers x cells trace span) and
            handed the final summary.  Observation never changes job
            results, scheduling or the journal's contents — beyond the
            retry events' ``duration`` field, which is recorded
            unconditionally.  The caller finalizes the observer (the
            engine may be run several times under one observer).
        speculate: Let worker suites answer cells from completed
            neighbors (exact clone or guarded delta replay; see
            :mod:`repro.arch.delta`).  Exact-or-absent, so results are
            bit-for-bit identical either way; each job's outcome is
            journaled as ``speculated`` / ``speculation-aborted``.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        timeout: float | None = None,
        hang_timeout: float | None = None,
        max_retries: int = 2,
        backoff: float = 0.5,
        max_backoff: float = 30.0,
        store: ResultStore | None = None,
        journal_path=None,
        resume: bool = False,
        job_runner: Callable[[dict], object] | None = None,
        mp_context: str = "spawn",
        observer=None,
        speculate: bool = True,
    ) -> None:
        check_positive("workers", workers)
        if timeout is not None:
            check_positive("timeout", timeout)
        if hang_timeout is not None:
            check_positive("hang_timeout", hang_timeout)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if max_backoff < 0:
            raise ValueError(f"max_backoff must be >= 0, got {max_backoff}")
        if job_runner is not None and store is not None:
            raise ValueError(
                "a persistent store requires the default simulation runner"
            )
        self.workers = int(workers)
        self.timeout = timeout
        self.hang_timeout = hang_timeout
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.store = store
        self.journal_path = journal_path
        self.resume = bool(resume)
        if job_runner is None:
            self.job_runner: Callable[[dict], object] = simulate_cell
            self._materialize: Callable = result_from_arrays
        else:
            self.job_runner = job_runner
            self._materialize = lambda value: value
        self.mp_context = mp_context
        self.observer = observer
        self.speculate = bool(speculate)

    # -- planning phase -------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> RunReport:
        """Complete every job exactly once; never raises per-job errors."""
        start = time.perf_counter()
        if self.observer is not None:
            self.observer.begin(len({spec.job_id for spec in specs}))
        journal = RunJournal(
            self.journal_path,
            listener=(self.observer.on_event
                      if self.observer is not None else None),
        )
        journal.record(
            "run-start",
            jobs=len(specs),
            workers=self.workers,
            timeout=self.timeout,
            resume=self.resume or None,
        )
        prior = (
            RunJournal.completed_jobs(self.journal_path)
            if self.resume and self.journal_path is not None
            else set()
        )
        results: dict[str, object] = {}
        failures: list[JobFailure] = []
        pending: list[JobSpec] = []
        seen: set[str] = set()
        for spec in specs:
            job_id = spec.job_id
            if job_id in seen:
                continue  # planner dedups; guard against caller duplicates
            seen.add(job_id)
            described = dict(app=spec.app, algorithm=spec.algorithm,
                             processors=spec.processors)
            if self.store is not None and job_id in prior:
                stored = self.store.load(spec.store_key)
                if stored is not None:
                    results[job_id] = stored
                    journal.record("resumed", job_id, **described)
                    continue
                # Journal said complete but the store entry is gone or
                # corrupt (and now evicted): fall through and recompute.
            if self.store is not None:
                stored = self.store.load(spec.store_key)
                if stored is not None:
                    results[job_id] = stored
                    journal.record("cache-hit", job_id, **described)
                    continue
            journal.record("queued", job_id, **described)
            pending.append(spec)

        if pending:
            restore = self._install_signal_handlers()
            try:
                if self.workers == 1:
                    self._run_inline(pending, journal, results, failures)
                else:
                    self._run_pool(pending, journal, results, failures)
            except KeyboardInterrupt:
                # _run_inline/_run_pool already journaled the in-flight
                # jobs as "interrupted"; seal the journal so --resume
                # sees a clean, complete prefix, then let the caller
                # (e.g. the CLI's exit-130 path) see the interrupt.
                journal.record("run-interrupted",
                               completed=len(results),
                               failed=len(failures))
                journal.close()
                raise
            finally:
                restore()

        wall = time.perf_counter() - start
        summary = RunSummary.from_events(
            journal.events, total_jobs=len(results) + len(failures),
            workers=self.workers, wall_seconds=wall,
        )
        journal.record(
            "run-end",
            executed=summary.executed,
            failed=summary.failed,
            cache_hits=summary.cache_hits,
            resumed=summary.resumed,
            wall_seconds=round(wall, 3),
        )
        journal.close()
        if self.observer is not None:
            self.observer.run_ended(summary)
        return RunReport(results=results, failures=failures, summary=summary,
                         events=journal.events)

    # -- execution phase ------------------------------------------------

    @staticmethod
    def _install_signal_handlers() -> Callable[[], None]:
        """Route SIGINT/SIGTERM into ``KeyboardInterrupt`` for the run.

        SIGINT already raises it; SIGTERM (the polite kill sent by
        schedulers and ``timeout(1)``) would otherwise die without
        flushing the journal.  Returns a restorer for the previous
        handlers; a no-op off the main thread (where handlers cannot be
        installed — the run is then only as interruptible as its host).
        """
        if threading.current_thread() is not threading.main_thread():
            return lambda: None

        def _on_signal(signum, frame):
            raise KeyboardInterrupt(f"received signal {signum}")

        installed: list[tuple[int, object]] = []
        for name in ("SIGINT", "SIGTERM"):
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                installed.append((signum, signal.signal(signum, _on_signal)))
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass

        def restore() -> None:
            for signum, previous in installed:
                try:
                    signal.signal(signum, previous)
                except (ValueError, OSError):  # pragma: no cover
                    pass

        return restore

    def _payload(self, spec: JobSpec, attempt: int, delay: float = 0.0) -> dict:
        payload = {
            "job": spec.job_id,
            "spec": spec.to_payload(),
            "label": spec.describe(),
            "timeout": self.timeout,
            "attempt": attempt,
            "delay": delay,
            "speculate": self.speculate,
            "store_dir": (str(self.store.directory)
                          if self.store is not None else None),
        }
        if self.observer is not None and self.observer.want_sim_probe:
            payload["probe"] = True
        return payload

    def _retry_delay(self, job_id: str, attempt: int) -> float:
        """Delay before re-submitting ``job_id`` after failed ``attempt``.

        Exponential in the attempt number, hard-capped at ``max_backoff``,
        then jittered to 75–125% of the capped value.  The jitter is
        deterministic — keyed by (job, attempt) — so retry schedules are
        reproducible run to run, while a cohort of jobs failing together
        (a wedged worker, a full disk) still de-synchronizes instead of
        hammering the pool again in lockstep.
        """
        delay = self.backoff * (2 ** (attempt - 1))
        if delay > self.max_backoff:
            delay = self.max_backoff
        if delay <= 0:
            return 0.0
        digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return delay * (0.75 + 0.5 * fraction)

    def _handle(self, out, payload, journal, results, failures, retry_queue):
        """Fold one attempt's outcome into results/failures/retries."""
        job_id = payload["job"]
        attempt = payload["attempt"]
        if out.get("ok"):
            value = self._materialize(out["value"])
            if self.store is not None:
                spec = JobSpec.from_payload(payload["spec"])
                if not self.store.store(spec.store_key, value):
                    # Disk trouble: the in-memory result still counts;
                    # the journal records that this cell is NOT durable
                    # (resume recomputes it when the store entry is gone).
                    journal.record("store-failed", job_id, attempt=attempt)
            results[job_id] = value
            journal.record(
                "finished", job_id,
                worker=out.get("worker"), attempt=attempt,
                duration=out.get("duration"),
            )
            for event in out.get("speculation", ()):
                mode = event.get("speculation")
                journal.record(
                    "speculation-aborted" if mode == "abort"
                    else "speculated",
                    job_id, mode=mode, detail=event.get("detail"),
                )
            if self.observer is not None:
                self.observer.job_finished(payload, out)
        elif attempt <= self.max_retries:
            delay = self._retry_delay(job_id, attempt)
            journal.record(
                "retrying", job_id,
                attempt=attempt, kind=out.get("kind"),
                error=out.get("error"), delay=round(delay, 3),
                duration=out.get("duration"),
            )
            retry_queue.append(
                {**payload, "attempt": attempt + 1, "delay": delay}
            )
        else:
            journal.record(
                "failed", job_id,
                attempt=attempt, kind=out.get("kind"),
                error=out.get("error"), duration=out.get("duration"),
            )
            failures.append(JobFailure(
                job_id=job_id, label=payload["label"],
                error=out.get("error", "unknown error"),
                kind=out.get("kind", "error"), attempts=attempt,
            ))

    def _run_inline(self, pending, journal, results, failures) -> None:
        """workers=1: same lifecycle, executed in-process."""
        queue = deque(self._payload(spec, 1) for spec in pending)
        payload = None
        try:
            while queue:
                payload = queue.popleft()
                journal.record("started", payload["job"],
                               attempt=payload["attempt"])
                out = _invoke(self.job_runner, payload)
                self._handle(out, payload, journal, results, failures, queue)
                payload = None
        except KeyboardInterrupt:
            if payload is not None:
                journal.record("interrupted", payload["job"],
                               attempt=payload["attempt"])
            for waiting in queue:
                journal.record("interrupted", waiting["job"],
                               attempt=waiting["attempt"])
            raise

    def _run_pool(self, pending, journal, results, failures) -> None:
        context = mp.get_context(self.mp_context)
        max_workers = min(self.workers, len(pending))

        def make_executor() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(max_workers=max_workers,
                                       mp_context=context)

        heartbeat_dir: Path | None = None
        watchdog: _Watchdog | None = None
        if self.hang_timeout is not None and hasattr(signal, "SIGKILL"):
            heartbeat_dir = Path(tempfile.mkdtemp(prefix="repro-heartbeat-"))
            watchdog = _Watchdog(heartbeat_dir, self.hang_timeout, journal)
            watchdog.start()

        executor = make_executor()
        inflight: dict = {}

        def submit(payload: dict) -> None:
            nonlocal executor
            if heartbeat_dir is not None:
                payload["heartbeat_dir"] = str(heartbeat_dir)
            journal.record("started", payload["job"],
                           attempt=payload["attempt"])
            while True:
                try:
                    future = executor.submit(_invoke, self.job_runner,
                                             payload)
                    break
                except BrokenProcessPool:
                    # A worker died while this submission was in flight.
                    # The broken pool has already poisoned every
                    # outstanding future, so the crash path in the main
                    # loop still collects and resubmits the innocents;
                    # rebuild here only to get *this* payload in.
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = make_executor()
            inflight[future] = payload

        try:
            for spec in pending:
                submit(self._payload(spec, 1))
            while inflight:
                done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
                retry_queue: deque = deque()
                crashed = False
                for future in done:
                    payload = inflight.pop(future)
                    try:
                        out = future.result()
                    except BrokenProcessPool:
                        crashed = True
                        job_id = payload["job"]
                        if watchdog is not None and job_id in watchdog.killed:
                            kind = "hang"
                            error = ("hung worker killed by the watchdog "
                                     f"after exceeding {self.hang_timeout:g}s")
                        else:
                            kind = "crash"
                            error = "worker process died unexpectedly"
                        out = {
                            "job": job_id, "ok": False,
                            "kind": kind, "attempt": payload["attempt"],
                            "error": error,
                            "duration": 0.0,
                        }
                    except Exception as exc:  # pragma: no cover - defensive
                        out = {
                            "job": payload["job"], "ok": False,
                            "kind": "error", "attempt": payload["attempt"],
                            "error": f"{type(exc).__name__}: {exc}",
                            "duration": 0.0,
                        }
                    self._handle(out, payload, journal, results, failures,
                                 retry_queue)
                if crashed:
                    # The pool is unusable: rebuild it, then resubmit the
                    # in-flight innocents without burning one of their
                    # attempts.
                    victims = list(inflight.values())
                    inflight.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = make_executor()
                    for payload in victims:
                        submit(payload)
                for payload in retry_queue:
                    submit(payload)
        except KeyboardInterrupt:
            for payload in inflight.values():
                journal.record("interrupted", payload["job"],
                               attempt=payload["attempt"])
            raise
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            if watchdog is not None:
                watchdog.stop()
            if heartbeat_dir is not None:
                shutil.rmtree(heartbeat_dir, ignore_errors=True)
