"""Job planning: the evaluation sweep as content-addressed work units.

A :class:`JobSpec` names one simulation cell — (application, algorithm,
machine) plus the workload parameters that make it reproducible (scale,
seed, quantum) — and is content-addressed by the same SHA-256 digest the
:class:`~repro.experiments.cache.ResultStore` files results under, so a
planned job, a journal entry and a cached ``.npz`` all share one id.

Two planners enumerate sweeps:

* :func:`plan_sections` mirrors exactly what the report renderer will ask
  an :class:`~repro.experiments.runner.ExperimentSuite` for, per section —
  prefetching these jobs makes a subsequent report render entirely from
  memoized results.
* :func:`plan_full_grid` is the paper's whole evaluation universe (every
  application x algorithm x machine cell, ~900 simulations), for
  benchmarks and cache prewarming.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.experiments.cache import cell_store_key, store_digest
from repro.experiments.runner import PROCESSOR_COUNTS
from repro.placement.algorithms import all_algorithms, static_sharing_algorithms
from repro.topo.model import canonical_topology
from repro.workload.applications import DEFAULT_SCALE, application_names, spec_for

__all__ = ["JobSpec", "SIMULATED_SECTIONS", "plan_sections", "plan_full_grid"]

#: §4.3's six least-uniform applications (mirrors ``tables.TABLE5_APPS``;
#: restated here so planning does not import the rendering layer).
_TABLE5_APPS: tuple[str, ...] = ("Water", "Locus", "Pverify", "Grav", "FFT",
                                 "Health")

#: The application each execution-time figure plots.
_FIGURE_APPS: dict[str, str] = {
    "figure2": "LocusRoute",
    "figure3": "FFT",
    "figure4": "Barnes-Hut",
    "figure5": "Water",
}

#: Report sections backed by simulation cells the engine can precompute.
#: (Tables 1-3 and calibration are trace analyses; the ablations sweep
#: bespoke ``ArchConfig``s outside the suite's cell grid — both stay on
#: the sequential path.)
SIMULATED_SECTIONS = frozenset(_FIGURE_APPS) | {"table5"}


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell plus everything needed to recompute it.

    ``app`` and ``algorithm`` are canonicalized on construction (paper
    spelling), so equal cells always compare — and hash — equal.

    ``engine`` selects the replay kernel the worker uses.  It is
    deliberately *not* part of :attr:`store_key`/:attr:`job_id`: the
    engines are bit-for-bit equivalent (see ``docs/PERFORMANCE.md``), so a
    cell computed by either engine is the same result and caches under the
    same content address.

    ``neighbors`` is likewise excluded from the content address: it is an
    advisory list of ``(algorithm, replicate)`` sibling cells (same
    application/machine) likely completed earlier, which the worker's
    suite may use as speculation donors (see
    :func:`repro.arch.delta.speculate_from_neighbor`).  Speculation is
    exact-or-absent, so hints never change what a cell computes — only
    how fast.

    ``stream_chunk_refs`` selects chunked streaming replay in the worker
    suite.  Like ``engine`` it is excluded from the content address:
    streaming replay is bit-for-bit identical to whole-column replay
    (see ``docs/STREAMING.md``), so either mode produces the same cell.

    ``topology`` — a spec string like ``numa:4:50:150`` (see
    :mod:`repro.topo.model`) — *is* part of the content address: a tiered
    machine computes genuinely different results.  It is canonicalized on
    construction, so the flat baseline collapses to None and keeps every
    pre-topology job id.
    """

    app: str
    algorithm: str
    processors: int
    infinite: bool = False
    associativity: int = 1
    cache_words: int | None = None
    replicate: int = 0
    scale: float = DEFAULT_SCALE
    seed: int = 0
    quantum_refs: int = 256
    engine: str = "classic"
    neighbors: tuple = ()
    stream_chunk_refs: int | None = None
    topology: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "app", spec_for(self.app).name)
        object.__setattr__(self, "algorithm", self.algorithm.upper())
        if self.engine not in ("classic", "fast"):
            raise ValueError(
                f"unknown engine {self.engine!r}: expected 'classic' or 'fast'"
            )
        canonical = canonical_topology(self.topology)
        object.__setattr__(
            self, "topology",
            canonical.spec if canonical is not None else None,
        )
        # Canonicalize hints (payloads may carry them as JSON lists).
        object.__setattr__(
            self, "neighbors",
            tuple((str(a).upper(), int(r)) for a, r in self.neighbors),
        )

    @property
    def cell(self) -> tuple:
        """The suite's in-process memoization key for this cell."""
        cell = (self.app, self.algorithm, self.processors, self.infinite,
                self.associativity, self.cache_words, self.replicate)
        if self.topology is not None:
            cell += (self.topology,)
        return cell

    @property
    def store_key(self) -> tuple:
        """The persistent :class:`ResultStore` key for this cell."""
        return cell_store_key(
            scale=self.scale, seed=self.seed, quantum_refs=self.quantum_refs,
            app=self.app, algorithm=self.algorithm,
            processors=self.processors, infinite=self.infinite,
            associativity=self.associativity, cache_words=self.cache_words,
            replicate=self.replicate, topology=self.topology,
        )

    @property
    def job_id(self) -> str:
        """Content address: the store digest of :attr:`store_key`."""
        return store_digest(self.store_key)

    def to_payload(self) -> dict:
        """The spec as a plain dict (crosses process boundaries as JSON-
        compatible data, never as a pickled suite)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        return cls(**payload)

    def describe(self) -> str:
        tags = []
        if self.infinite:
            tags.append("inf")
        if self.replicate:
            tags.append(f"r{self.replicate}")
        suffix = f" [{','.join(tags)}]" if tags else ""
        return f"{self.app}/{self.algorithm}/{self.processors}p{suffix}"


def _sort_key(spec: JobSpec) -> tuple:
    return (spec.app, spec.algorithm, spec.processors, spec.infinite,
            spec.associativity,
            -1 if spec.cache_words is None else spec.cache_words,
            spec.replicate, spec.topology or "")


def _dedup(specs: list[JobSpec]) -> list[JobSpec]:
    unique = {spec.job_id: spec for spec in specs}
    return _assign_neighbors(sorted(unique.values(), key=_sort_key))


#: Speculation hints per job (matches the suite's own candidate cap).
_MAX_HINTS = 8


def _assign_neighbors(specs: list[JobSpec]) -> list[JobSpec]:
    """Attach speculation hints: each job names up to :data:`_MAX_HINTS`
    earlier-planned siblings (same application/machine, other placements).

    Plan order is submission order, so an earlier sibling has usually
    completed — and landed in the result store — by the time this job's
    worker looks for donors.  Deterministic: the hints are a pure function
    of the (already deterministic) plan.
    """
    seen: dict[tuple, list] = {}
    hinted = []
    for spec in specs:
        group = (spec.app, spec.processors, spec.infinite,
                 spec.associativity, spec.cache_words, spec.topology)
        earlier = seen.setdefault(group, [])
        hinted.append(replace(spec, neighbors=tuple(earlier[:_MAX_HINTS])))
        earlier.append((spec.algorithm, spec.replicate))
    return hinted


def _processors_for(app: str, topology: str | None = None) -> list[int]:
    """Machine sizes for one application: p <= t, and — mirroring
    :meth:`ExperimentSuite.processors_for` — divisible into a tiered
    topology's groups."""
    threads = spec_for(app).num_threads
    canonical = canonical_topology(topology)
    groups = canonical.groups if canonical is not None else 1
    return [p for p in PROCESSOR_COUNTS if p <= threads and p % groups == 0]


def _figure_jobs(app: str, *, random_replicates: int, params: dict) -> list[JobSpec]:
    """Every cell an execution-time figure (or Figure 5) touches: all
    fourteen static algorithms per machine, with the RANDOM baseline's
    extra replicate draws."""
    jobs = []
    for processors in _processors_for(app, params.get("topology")):
        for algorithm in all_algorithms():
            jobs.append(JobSpec(app=app, algorithm=algorithm.name,
                                processors=processors, **params))
            if algorithm.name == "RANDOM":
                jobs += [
                    JobSpec(app=app, algorithm="RANDOM",
                            processors=processors, replicate=r, **params)
                    for r in range(1, random_replicates)
                ]
    return jobs


def _table5_jobs(params: dict) -> list[JobSpec]:
    """Table 5's infinite-cache cells: the six static sharing algorithms,
    their +LB versions, COHERENCE-TRAFFIC and the LOAD-BAL baseline."""
    names = (
        [a.name for a in static_sharing_algorithms()]
        + [a.name for a in static_sharing_algorithms(load_balanced=True)]
        + ["COHERENCE-TRAFFIC", "LOAD-BAL"]
    )
    jobs = []
    for app in _TABLE5_APPS:
        for processors in _processors_for(app, params.get("topology")):
            jobs += [
                JobSpec(app=app, algorithm=name, processors=processors,
                        infinite=True, **params)
                for name in names
            ]
    return jobs


def plan_sections(
    sections: list[str] | None = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    quantum_refs: int = 256,
    random_replicates: int = 3,
    engine: str = "classic",
    stream_chunk_refs: int | None = None,
    topology: str | None = None,
) -> list[JobSpec]:
    """The deduplicated, deterministically ordered jobs the chosen report
    sections will need (default: all sections).

    Section names outside :data:`SIMULATED_SECTIONS` plan no jobs — their
    cells (if any) are computed sequentially at render time.
    """
    params = dict(scale=scale, seed=seed, quantum_refs=quantum_refs,
                  engine=engine, stream_chunk_refs=stream_chunk_refs,
                  topology=topology)
    chosen = set(sections) if sections is not None else set(SIMULATED_SECTIONS)
    jobs: list[JobSpec] = []
    for section, app in _FIGURE_APPS.items():
        if section in chosen:
            jobs += _figure_jobs(app, random_replicates=random_replicates,
                                 params=params)
    if "table5" in chosen:
        jobs += _table5_jobs(params)
    return _dedup(jobs)


def plan_full_grid(
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    quantum_refs: int = 256,
    random_replicates: int = 3,
    engine: str = "classic",
    stream_chunk_refs: int | None = None,
    topology: str | None = None,
) -> list[JobSpec]:
    """The paper's full evaluation universe: every application x algorithm
    x machine cell (plus RANDOM replicates and the Table 5 infinite-cache
    cells) — ~900 simulations at default replication."""
    params = dict(scale=scale, seed=seed, quantum_refs=quantum_refs,
                  engine=engine, stream_chunk_refs=stream_chunk_refs,
                  topology=topology)
    jobs: list[JobSpec] = []
    for app in application_names():
        jobs += _figure_jobs(app, random_replicates=random_replicates,
                             params=params)
    jobs += _table5_jobs(params)
    return _dedup(jobs)
