"""The HTTP face of the service: routes, streams and request metrics.

:class:`ServiceServer` binds a :class:`~repro.service.manager.JobManager`
to an asyncio socket server speaking the minimal HTTP of
:mod:`repro.service.http`.  The API surface (all under ``/v1``):

========  ===========================  =======================================
Method    Path                         Meaning
========  ===========================  =======================================
GET       ``/healthz``                 liveness (also ``/v1/healthz``);
                                       ``?deep=1`` adds queue depth,
                                       executor liveness and a store
                                       writability probe (ok/degraded)
GET       ``/v1/metrics``              Prometheus text exposition
GET       ``/v1/stats``                queue/job summary (JSON)
POST      ``/v1/jobs``                 submit a suite request; 202 created,
                                       200 coalesced, 429 + Retry-After busy
GET       ``/v1/jobs``                 list known jobs
GET       ``/v1/jobs/{id}``            one job's status
GET       ``/v1/jobs/{id}/events``     live journal stream — NDJSON by
                                       default, SSE with ``Accept:
                                       text/event-stream`` or ``?format=sse``
GET       ``/v1/jobs/{id}/report``     the rendered text report (byte-equal
                                       to the same suite run offline)
GET       ``/v1/jobs/{id}/report.json``  the JSON export
========  ===========================  =======================================

Event streams are fed by :class:`~repro.exec.journal.JournalTail` over
the job's engine journal — the same torn-tail-safe reader behind the
progress meter — and terminate with one synthetic ``job-end`` event
carrying the final state, so clients need no out-of-band poll to learn
how the run ended.

Every request lands in the manager's metrics registry (count by
route/method/status, latency histogram); an optional background task
exports the registry to a Prometheus textfile on an interval.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro import __version__
from repro.exec.journal import JournalTail
from repro.experiments.api import SuiteRequest
from repro.service.http import (
    HttpError,
    Request,
    json_bytes,
    read_request,
    render_response,
)
from repro.service.manager import Busy, Job, JobManager
from repro.util.atomicio import atomic_write_text

__all__ = ["ServiceServer", "ServerHandle", "start_in_background",
           "API_PREFIX"]

#: Version prefix of every API route.
API_PREFIX = "/v1"

#: Seconds between polls while an event stream is idle.
_STREAM_POLL = 0.05


class ServiceServer:
    """Asyncio HTTP server over one :class:`JobManager`.

    Args:
        manager: The job engine to expose.
        host: Bind address (default loopback; the service has no auth
            beyond tenant self-identification, so keep it local unless
            fronted by something that does).
        port: Bind port; 0 picks a free one (tests).
        metrics_interval: Seconds between Prometheus textfile exports to
            ``<data_dir>/metrics.prom``; ``None`` disables the task.
    """

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_interval: float | None = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.metrics_interval = metrics_interval
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        """Bind the socket; returns the asyncio server (for its port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        return self._server

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's main loop)."""
        server = await self.start()
        exporter = None
        if self.metrics_interval:
            exporter = asyncio.ensure_future(self._export_metrics_loop())
        try:
            async with server:
                await server.serve_forever()
        finally:
            if exporter is not None:
                exporter.cancel()

    async def _export_metrics_loop(self) -> None:
        path = self.manager.data_dir / "metrics.prom"
        while True:
            await asyncio.sleep(self.metrics_interval)
            try:
                atomic_write_text(path, self.manager.registry.to_prometheus(),
                                  encoding="utf-8")
            except OSError:
                pass

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        start = time.monotonic()
        route, method, status = "unmatched", "-", 0
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                method = request.method
                route, status = await self._dispatch(request, writer)
            except HttpError as exc:
                status = exc.status
                writer.write(render_response(
                    exc.status, json_bytes({"error": exc.message}),
                    headers=exc.headers))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:
                status = 500
                writer.write(render_response(500, json_bytes(
                    {"error": f"{type(exc).__name__}: {exc}"})))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            registry = self.manager.registry
            registry.counter("service_http_requests", route=route,
                             method=method, status=str(status)).inc()
            registry.histogram("service_http_seconds", route=route).observe(
                time.monotonic() - start)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> tuple[str, int]:
        """Route one request; returns ``(route_label, status)`` for the
        request metrics.  Non-streaming handlers write one complete
        response; the events handler streams and closes."""
        path, method = request.path, request.method
        if path in ("/healthz", f"{API_PREFIX}/healthz"):
            self._require(method, "GET")
            deep = request.query.get("deep") not in (None, "", "0")
            body = dict(self.manager.health(deep=deep),
                        version=__version__)
            writer.write(render_response(200, json_bytes(body)))
            return "/healthz", 200
        if path == f"{API_PREFIX}/metrics":
            self._require(method, "GET")
            writer.write(render_response(
                200, self.manager.registry.to_prometheus().encode("utf-8"),
                content_type="text/plain; version=0.0.4"))
            return "/v1/metrics", 200
        if path == f"{API_PREFIX}/stats":
            self._require(method, "GET")
            writer.write(render_response(200,
                                         json_bytes(self.manager.stats())))
            return "/v1/stats", 200
        if path == f"{API_PREFIX}/jobs":
            if method == "POST":
                return "/v1/jobs", self._submit(request, writer)
            self._require(method, "GET")
            writer.write(render_response(200, json_bytes(
                {"jobs": [job.to_dict()
                          for job in self.manager.list_jobs()]})))
            return "/v1/jobs", 200
        if path.startswith(f"{API_PREFIX}/jobs/"):
            rest = path[len(f"{API_PREFIX}/jobs/"):]
            job_id, _, leaf = rest.partition("/")
            job = self.manager.get(job_id)
            if job is None:
                raise HttpError(404, f"no job {job_id!r}")
            if not leaf:
                self._require(method, "GET")
                writer.write(render_response(200, json_bytes(job.to_dict())))
                return "/v1/jobs/{id}", 200
            if leaf == "events":
                self._require(method, "GET")
                await self._stream_events(request, writer, job)
                return "/v1/jobs/{id}/events", 200
            if leaf == "report":
                self._require(method, "GET")
                return "/v1/jobs/{id}/report", self._send_artifact(
                    writer, job, job.report_path,
                    "text/plain; charset=utf-8")
            if leaf == "report.json":
                self._require(method, "GET")
                return "/v1/jobs/{id}/report.json", self._send_artifact(
                    writer, job, job.report_json_path, "application/json")
        raise HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected}")

    # -- handlers --------------------------------------------------------

    def _submit(self, request: Request,
                writer: asyncio.StreamWriter) -> int:
        """POST /v1/jobs — parse, admit, coalesce."""
        payload = request.json()
        try:
            suite_request = SuiteRequest.from_dict(payload)
        except (ValueError, TypeError) as exc:
            raise HttpError(400, str(exc))
        try:
            job, created = self.manager.submit(suite_request, request.tenant)
        except Busy as exc:
            raise HttpError(429, str(exc),
                            headers={"Retry-After": str(exc.retry_after)})
        status = 202 if created else 200
        body = dict(job.to_dict(), created=created)
        writer.write(render_response(status, json_bytes(body)))
        return status

    def _send_artifact(self, writer: asyncio.StreamWriter, job: Job,
                       path, content_type: str) -> int:
        """Serve a finished job's on-disk artifact byte-for-byte."""
        if job.state == "failed":
            raise HttpError(409, f"job {job.id} failed: {job.error}")
        if not job.terminal or not path.exists():
            raise HttpError(409, f"job {job.id} is {job.state}; "
                            "artifacts exist once it is done")
        writer.write(render_response(200, path.read_bytes(),
                                     content_type=content_type))
        return 200

    async def _stream_events(self, request: Request,
                             writer: asyncio.StreamWriter,
                             job: Job) -> None:
        """GET /v1/jobs/{id}/events — follow the job's journal live.

        Yields every journal event exactly once (torn tails and
        concurrent appends handled by :class:`JournalTail`), then — once
        the job is terminal and the file drained — one synthetic
        ``job-end`` event with the final state.  ``?timeout=SECONDS``
        bounds the stream for impatient clients.
        """
        sse = request.wants_sse()
        content_type = ("text/event-stream" if sse
                        else "application/x-ndjson")
        writer.write(render_response(200, content_type=content_type,
                                     head_only=True))
        await writer.drain()

        def encode(entry: dict) -> bytes:
            line = json_bytes(entry).decode("utf-8").replace("\n", "")
            if sse:
                return f"data: {line}\n\n".encode("utf-8")
            return (line + "\n").encode("utf-8")

        deadline = None
        if "timeout" in request.query:
            try:
                deadline = time.monotonic() + float(request.query["timeout"])
            except ValueError:
                raise HttpError(400, "timeout must be a number")
        tailer = JournalTail(job.journal_path)
        while True:
            final = job.terminal  # checked before the drain: no lost tail
            events = tailer.poll()
            for entry in events:
                writer.write(encode(entry))
            if events:
                await writer.drain()
            if final:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            if not events:
                await asyncio.sleep(_STREAM_POLL)
        end = {"event": "job-end", "job": job.id, "state": job.state}
        if job.error:
            end["error"] = job.error
        writer.write(encode(end))
        await writer.drain()


@dataclass
class ServerHandle:
    """A running background server: its URL and how to stop it."""

    url: str
    stop: Callable[[], None]
    thread: threading.Thread


def start_in_background(
    manager: JobManager,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_interval: float | None = None,
) -> ServerHandle:
    """Run a :class:`ServiceServer` on a daemon thread (tests, benchmarks).

    Blocks until the socket is bound; the returned handle carries the
    resolved URL (useful with ``port=0``) and a ``stop()`` that shuts
    the event loop down and joins the thread.  The manager is *not*
    shut down — that stays the caller's job.
    """
    server = ServiceServer(manager, host=host, port=port,
                           metrics_interval=metrics_interval)
    started = threading.Event()
    holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                bound = await server.start()
            except OSError as exc:
                holder["error"] = exc
                started.set()
                return
            holder["loop"] = asyncio.get_running_loop()
            stop_event = holder["stop_event"] = asyncio.Event()
            exporter = None
            if metrics_interval:
                exporter = asyncio.ensure_future(
                    server._export_metrics_loop())
            started.set()
            await stop_event.wait()
            if exporter is not None:
                exporter.cancel()
            bound.close()
            await bound.wait_closed()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=runner, daemon=True, name="repro-serve")
    thread.start()
    if not started.wait(10):
        raise RuntimeError("service did not start within 10s")
    if "error" in holder:
        raise RuntimeError(f"service failed to bind: {holder['error']}")

    def stop() -> None:
        loop = holder.get("loop")
        if loop is not None:
            loop.call_soon_threadsafe(holder["stop_event"].set)
        thread.join(10)

    return ServerHandle(url=f"http://{host}:{server.port}", stop=stop,
                        thread=thread)
