"""The service's job engine: a multi-tenant, coalescing run queue.

One :class:`JobManager` owns a data directory and a pool of worker
threads.  Submissions arrive as :class:`~repro.experiments.api.SuiteRequest`
objects and become :class:`Job` records whose id *is* the request's
SHA-256 content address (:attr:`SuiteRequest.digest`) — which makes
request coalescing a dictionary lookup:

* a submission whose digest matches a queued/running/finished job
  attaches to that job instead of enqueuing a second computation;
* all jobs share one :class:`~repro.experiments.cache.ResultStore`, so
  even *distinct* requests that overlap in planned cells share the
  cell-level work (the store is content-addressed too);
* a finished job survives restarts — its ``state.json``/report artifacts
  are reloaded lazily from disk, so resubmitting yesterday's request is
  a warm cache hit, not a rerun.

Admission control is two-gated: a per-tenant quota on *active* (queued +
running) jobs, then a global bound on queue depth.  Both rejections
raise a :class:`Busy` subtype carrying a ``retry_after`` estimate (an
EWMA of recent job durations) that the HTTP layer turns into
``429 + Retry-After``.

Everything the manager does is observable: per-state counters and
gauges flow through a :class:`~repro.obs.metrics.MetricsRegistry`, and
each job's engine run writes the standard JSONL journal that the
service's event streams (and ``repro-stats``) tail.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.api import RunOptions, SuiteRequest, run_suite
from repro.experiments.export import export_json
from repro.obs.metrics import MetricsRegistry
from repro.util.atomicio import atomic_write_text

__all__ = ["Job", "JobManager", "Busy", "QueueFull", "QuotaExceeded",
           "JOB_STATES", "probe_writable"]

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")

#: Fallback Retry-After before any job has finished (seconds).
_DEFAULT_RETRY_AFTER = 5.0


def probe_writable(directory: str | Path) -> bool:
    """Whether ``directory`` accepts a small durable write right now.

    Writes and unlinks a probe file (pid-suffixed, so concurrent probes
    never collide).  This is the deep-health building block: a full
    disk, a revoked mount or a permissions regression turns the answer
    False long before a job fails on it.
    """
    directory = Path(directory)
    probe = directory / f".health-probe-{os.getpid()}"
    try:
        with open(probe, "w", encoding="ascii") as stream:
            stream.write("ok\n")
            stream.flush()
        probe.unlink()
    except OSError:
        try:
            probe.unlink()
        except OSError:
            pass
        return False
    return True


class Busy(Exception):
    """Base for admission-control rejections (HTTP 429).

    ``retry_after`` is the manager's estimate of when capacity frees up,
    in whole seconds (at least 1).
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(round(retry_after)))


class QueueFull(Busy):
    """The global queue is at its depth bound."""


class QuotaExceeded(Busy):
    """The submitting tenant is at its active-job quota."""


@dataclass
class Job:
    """One submitted run: the unit the queue, the API and the disk share.

    ``id`` equals the request digest, so it is simultaneously the
    coalescing key, the journal directory name and the handle clients
    poll.  ``tenants`` accumulates every tenant that submitted (or
    coalesced onto) the job; quota accounting charges each of them while
    the job is active.
    """

    id: str
    request: SuiteRequest
    tenants: set = field(default_factory=set)
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    coalesced: int = 0                 #: extra submissions absorbed
    directory: Path | None = None

    @property
    def journal_path(self) -> Path:
        """The engine journal this job's run appends to."""
        return self.directory / "journal.jsonl"

    @property
    def report_path(self) -> Path:
        """The rendered text report (exists once ``done``)."""
        return self.directory / "report.txt"

    @property
    def report_json_path(self) -> Path:
        """The machine-readable JSON export (exists once ``done``)."""
        return self.directory / "report.json"

    @property
    def state_path(self) -> Path:
        """The persisted job record (written atomically at completion)."""
        return self.directory / "state.json"

    @property
    def active(self) -> bool:
        """Whether the job still occupies queue/quota capacity."""
        return self.state in ("queued", "running")

    @property
    def terminal(self) -> bool:
        """Whether the job has reached ``done`` or ``failed``."""
        return self.state in ("done", "failed")

    def to_dict(self) -> dict:
        """The job as the JSON document the API returns."""
        return {
            "id": self.id,
            "state": self.state,
            "request": self.request.to_dict(),
            "describe": self.request.describe(),
            "tenants": sorted(self.tenants),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "coalesced": self.coalesced,
        }


class JobManager:
    """Run queue + worker pool + on-disk job store for the service.

    Args:
        data_dir: Root directory; jobs land under ``jobs/<digest>/`` and
            the shared result store under ``store/``.
        run_jobs: Worker *processes* each engine run fans out to (1 =
            in-thread sequential execution; per-cell SIGALRM timeouts
            need > 1 because workers then run in subprocesses).
        executors: Concurrent engine runs (worker threads).
        max_queue: Global bound on queued (not yet running) jobs.
        tenant_quota: Per-tenant bound on active (queued + running) jobs.
        retries: Per-cell retry budget passed to the engine.
        timeout: Per-cell timeout in seconds passed to the engine.
        registry: Metrics sink (a private one is created if omitted).
        speculate: Let runs answer cells from completed neighbors (see
            :mod:`repro.arch.delta`); exact-or-absent, so reports are
            byte-identical either way.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        run_jobs: int = 1,
        executors: int = 1,
        max_queue: int = 16,
        tenant_quota: int = 4,
        retries: int = 2,
        timeout: float | None = None,
        registry: MetricsRegistry | None = None,
        speculate: bool = True,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.jobs_dir = self.data_dir / "jobs"
        self.store_dir = self.data_dir / "store"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.run_jobs = int(run_jobs)
        self.max_queue = int(max_queue)
        self.tenant_quota = int(tenant_quota)
        self.retries = int(retries)
        self.timeout = timeout
        self.speculate = bool(speculate)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._jobs: dict[str, Job] = {}
        self._queue: deque[Job] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._avg_seconds: float | None = None  # EWMA of job durations
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-exec-{i}",
                             daemon=True)
            for i in range(max(1, int(executors)))
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ------------------------------------------------------

    def submit(self, request: SuiteRequest, tenant: str = "default"
               ) -> tuple[Job, bool]:
        """Submit a run; returns ``(job, created)``.

        ``created`` is False when the submission coalesced onto an
        existing job (same content address, any state but ``failed``) or
        hit a finished job reloaded from disk.  A previously *failed*
        job is retried: it re-enters the queue as a fresh attempt.

        Raises:
            QuotaExceeded: the tenant is at its active-job quota.
            QueueFull: the global queue is at its depth bound.
        """
        digest = request.digest
        with self._cond:
            if self._closed:
                raise RuntimeError("manager is shut down")
            job = self._jobs.get(digest)
            if job is None:
                job = self._load_finished(digest, request)
            if job is not None and job.state != "failed":
                job.tenants.add(tenant)
                job.coalesced += 1
                self.registry.counter("service_jobs_coalesced").inc()
                return job, False
            active = sum(1 for j in self._jobs.values()
                         if j.active and tenant in j.tenants)
            if active >= self.tenant_quota:
                self._reject("quota")
                raise QuotaExceeded(
                    f"tenant {tenant!r} already has {active} active jobs "
                    f"(quota {self.tenant_quota})",
                    self._retry_after(active))
            if len(self._queue) >= self.max_queue:
                self._reject("queue")
                raise QueueFull(
                    f"queue is full ({self.max_queue} jobs waiting)",
                    self._retry_after(len(self._queue)))
            if job is None:
                job = Job(id=digest, request=request,
                          directory=self.jobs_dir / digest)
                job.directory.mkdir(parents=True, exist_ok=True)
                self._jobs[digest] = job
            else:  # retrying a failed job: reset to a fresh attempt
                job.state = "queued"
                job.error = None
                job.started = job.finished = None
                job.created = time.time()
            job.tenants.add(tenant)
            self.registry.counter("service_jobs_submitted").inc()
            self._queue.append(job)
            self.registry.gauge("service_queue_depth").set(len(self._queue))
            self._cond.notify()
        return job, True

    def _reject(self, reason: str) -> None:
        self.registry.counter("service_jobs_rejected", reason=reason).inc()

    def _retry_after(self, backlog: int) -> float:
        """Seconds until capacity likely frees: backlog x average job
        duration, clamped to [1, 120]."""
        avg = self._avg_seconds or _DEFAULT_RETRY_AFTER
        return min(120.0, max(1.0, avg * max(1, backlog)
                              / max(1, len(self._workers))))

    def _load_finished(self, digest: str, request: SuiteRequest
                       ) -> Job | None:
        """Reload a finished job from a previous process, if its
        artifacts survive on disk (state.json + report files)."""
        directory = self.jobs_dir / digest
        state_path = directory / "state.json"
        if not state_path.exists():
            return None
        try:
            record = json.loads(state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if record.get("state") != "done":
            return None
        if not (directory / "report.txt").exists():
            return None
        job = Job(id=digest, request=request, directory=directory,
                  state="done",
                  created=record.get("created", time.time()),
                  started=record.get("started"),
                  finished=record.get("finished"))
        job.tenants.update(record.get("tenants", []))
        self._jobs[digest] = job
        self.registry.counter("service_jobs_reloaded").inc()
        return job

    # -- lookup ----------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        """The job with this id, from memory or reloaded from disk."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            state_path = self.jobs_dir / job_id / "state.json"
            if not state_path.exists():
                return None
            try:
                record = json.loads(state_path.read_text(encoding="utf-8"))
                request = SuiteRequest.from_dict(record["request"])
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                return None
            return self._load_finished(job_id, request)

    def list_jobs(self) -> list[Job]:
        """Every known job, newest first."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.created,
                          reverse=True)

    def stats(self) -> dict:
        """A point-in-time summary (the ``/v1/stats`` body)."""
        with self._cond:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                "jobs": by_state,
                "queue_depth": len(self._queue),
                "executors": len(self._workers),
                "run_jobs": self.run_jobs,
                "max_queue": self.max_queue,
                "tenant_quota": self.tenant_quota,
                "avg_job_seconds": self._avg_seconds,
            }

    def health(self, deep: bool = False) -> dict:
        """The ``/healthz`` body: liveness, or a deep readiness probe.

        Shallow (the default) only proves the process answers.  Deep
        mode — what the distributed liveness watchdog and rebalancer
        poll — additionally reports queue depth, how many executor
        threads are still alive, and whether the shared store accepts
        writes; ``status`` flips to ``"degraded"`` when any executor has
        died or the store is unwritable (the service still answers, but
        routing new work at it is unwise).
        """
        if not deep:
            return {"status": "ok"}
        with self._cond:
            queue_depth = len(self._queue)
            executors_alive = sum(
                1 for worker in self._workers if worker.is_alive())
            executors = len(self._workers)
        store_writable = probe_writable(self.store_dir)
        degraded = executors_alive < executors or not store_writable
        return {
            "status": "degraded" if degraded else "ok",
            "queue_depth": queue_depth,
            "executors": executors,
            "executors_alive": executors_alive,
            "store_writable": store_writable,
        }

    def wait(self, job_id: str, timeout: float | None = None) -> Job | None:
        """Block until the job reaches a terminal state (tests/CLI)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.terminal:
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return job
                self._cond.wait(remaining if remaining is not None else 1.0)

    # -- execution -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                job = self._queue.popleft()
                job.state = "running"
                job.started = time.time()
                self.registry.gauge("service_queue_depth").set(
                    len(self._queue))
                self.registry.gauge("service_jobs_running").set(
                    sum(1 for j in self._jobs.values()
                        if j.state == "running"))
            self._execute(job)
            with self._cond:
                self.registry.gauge("service_jobs_running").set(
                    sum(1 for j in self._jobs.values()
                        if j.state == "running"))
                self._cond.notify_all()

    def _execute(self, job: Job) -> None:
        """Run one job through the engine and persist its artifacts.

        Ordering matters for the event streams: the report files and
        ``state.json`` are written *before* the job's state flips to a
        terminal value, so a tailer using "job is terminal" as its stop
        signal (with one final drain, as :meth:`RunJournal.tail` does)
        observes every journal event and then finds the artifacts in
        place.
        """
        options = RunOptions(
            jobs=self.run_jobs,
            retries=self.retries,
            timeout=self.timeout if self.run_jobs > 1 else None,
            journal=str(job.journal_path),
            cache_dir=str(self.store_dir),
            speculate=self.speculate,
        )
        error: str | None = None
        try:
            result = run_suite(job.request, options, render=True)
            atomic_write_text(job.report_path, result.report_text,
                              encoding="utf-8")
            sections = (list(job.request.sections)
                        if job.request.sections is not None else None)
            export_json(result.suite, job.report_json_path,
                        sections=sections)
        except Exception as exc:  # a failed run must not kill the worker
            error = f"{type(exc).__name__}: {exc}"
        finished = time.time()
        record = {
            "state": "failed" if error else "done",
            "request": job.request.to_dict(),
            "tenants": sorted(job.tenants),
            "created": job.created,
            "started": job.started,
            "finished": finished,
            "error": error,
        }
        try:
            atomic_write_text(job.state_path,
                              json.dumps(record, sort_keys=True, indent=2)
                              + "\n", encoding="utf-8")
        except OSError:
            pass
        duration = finished - (job.started or finished)
        self.registry.histogram("service_job_seconds").observe(duration)
        if self._avg_seconds is None:
            self._avg_seconds = duration
        else:
            self._avg_seconds = 0.7 * self._avg_seconds + 0.3 * duration
        # The state flip is last: see the ordering note above.
        job.error = error
        job.finished = finished
        job.state = "failed" if error else "done"
        self.registry.counter("service_jobs_finished",
                              state=job.state).inc()

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the workers.

        Queued jobs still drain (a worker picks them up before exiting);
        the timeout bounds how long each join waits.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
