"""Stdlib client for the repro service (plus ``python -m repro.service.client``).

:class:`ServiceClient` speaks the ``/v1`` API over ``http.client`` —
one connection per request, matching the server's ``Connection: close``
discipline — so tests, examples and CI need nothing beyond the standard
library.  The one long-lived call is :meth:`events`, which holds its
connection open and yields journal events as the server streams them;
:meth:`watch` pipes that stream into the shared
:func:`~repro.obs.progress.drive_meter`, so a remote run paints the
same progress line a local ``repro-experiments --progress`` does.

The module doubles as a tiny CLI::

    python -m repro.service.client --url http://127.0.0.1:8077 \\
        submit --sections table1 --scale 0.001 --watch --report-out out.txt

which is exactly how the CI service job exercises the server.
"""

from __future__ import annotations

import argparse
import hashlib
import http.client
import json
import math
import sys
import time
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime
from typing import Callable, Iterator, TypeVar
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError", "main", "retry_idempotent"]

_T = TypeVar("_T")

#: Transient transport failures worth retrying on an idempotent request:
#: ``ConnectionError`` covers refused/reset/aborted/broken-pipe (and
#: ``http.client.RemoteDisconnected``), plus transport wrappers that
#: subclass it, like :class:`repro.dist.client.NodeUnreachable`.
_RETRYABLE_ERRORS = (ConnectionError,)


def retry_idempotent(
    request: Callable[[], _T],
    *,
    key: str,
    attempts: int = 4,
    backoff: float = 0.1,
    max_backoff: float = 2.0,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run an **idempotent** request with bounded, jittered backoff.

    Retries only transient transport failures — connection refused or
    reset, the signatures of a restarting server or a healing network
    partition — up to ``attempts`` total tries.  The delay grows
    exponentially from ``backoff``, is hard-capped at ``max_backoff``
    and jittered to 75–125% by a deterministic hash of ``(key,
    attempt)`` (the engine's retry-jitter scheme), so schedules are
    reproducible while a cohort of callers de-synchronizes.

    This helper must only wrap requests that are safe to repeat: GETs,
    or submissions whose deduplication the server guarantees.  A plain
    POST with side effects does **not** qualify — see
    :meth:`ServiceClient.submit`, which deliberately never retries.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    attempt = 0
    while True:
        attempt += 1
        try:
            return request()
        except _RETRYABLE_ERRORS:
            if attempt >= attempts:
                raise
        delay = min(backoff * (2 ** (attempt - 1)), max_backoff)
        if delay > 0:
            digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            sleep(delay * (0.75 + 0.5 * fraction))


class ServiceError(Exception):
    """A non-2xx API response.

    Carries the HTTP ``status`` and, for 429s, the server's
    ``retry_after`` hint in seconds (else ``None``).  The hint is a
    float: RFC 9110 allows both delta-seconds and an HTTP-date, and
    real servers send fractional delays.
    """

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServiceClient:
    """Client for one service endpoint.

    Idempotent GETs (status, events, report, …) transparently retry
    transient connection-refused/reset failures with bounded jittered
    backoff (:func:`retry_idempotent`) — a restarting server or a
    healing partition costs a delay, not an exception.  ``submit`` never
    retries on its own: a POST that died mid-flight *may* have been
    accepted, and blindly repeating it would be a second submission on
    a server that happens to not coalesce it.  (Against this server,
    resubmitting the same request *is* safe — the digest coalesces —
    so callers wanting at-least-once submission simply call
    :meth:`submit` again themselves.)

    Args:
        base_url: e.g. ``http://127.0.0.1:8077`` (scheme optional).
        tenant: Sent as ``X-Tenant`` on every request; the server's
            quota accounting keys on it.
        timeout: Per-request socket timeout in seconds.
        retries: Total attempts for idempotent GETs (1 disables retry).
        retry_backoff: Base backoff in seconds between those attempts.
    """

    def __init__(self, base_url: str, *, tenant: str = "default",
                 timeout: float = 30.0, retries: int = 4,
                 retry_backoff: float = 0.1) -> None:
        if "//" not in base_url:
            base_url = "http://" + base_url
        split = urlsplit(base_url)
        if split.scheme != "http":
            raise ValueError(f"only http:// is supported, got {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)

    # -- transport -------------------------------------------------------

    def _connect(self, timeout: float | None = None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, dict, bytes]:
        """One request/response cycle; returns (status, headers, body)."""
        connection = self._connect()
        try:
            headers = {"X-Tenant": self.tenant}
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            lowered = {k.lower(): v for k, v in response.getheaders()}
            return response.status, lowered, data
        finally:
            connection.close()

    def _retrying(self, request: Callable[[], _T], key: str) -> _T:
        """Apply this client's idempotent-GET retry policy."""
        return retry_idempotent(request, key=key, attempts=self.retries,
                                backoff=self.retry_backoff)

    def _json(self, method: str, path: str,
              body: dict | None = None) -> dict:
        status, headers, data = self._request(method, path, body)
        if status >= 400:
            raise self._error(status, headers, data)
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(status, f"unparseable response body: {exc}")

    def _get_json(self, path: str) -> dict:
        """An idempotent JSON GET, with transient-failure retries."""
        return self._retrying(lambda: self._json("GET", path), key=path)

    @staticmethod
    def _error(status: int, headers: dict, data: bytes) -> ServiceError:
        try:
            message = json.loads(data.decode("utf-8")).get("error", "")
        except (UnicodeDecodeError, json.JSONDecodeError):
            message = data.decode("utf-8", errors="replace").strip()
        retry_after = None
        if "retry-after" in headers:
            retry_after = ServiceClient._parse_retry_after(
                headers["retry-after"])
        return ServiceError(status, message or "request failed", retry_after)

    @staticmethod
    def _parse_retry_after(value: str) -> float | None:
        """Parse a ``Retry-After`` header value into seconds-from-now.

        RFC 9110 §10.2.3 allows two forms: delta-seconds (including
        the fractional delays real rate limiters emit) and an absolute
        HTTP-date.  A date is converted to a delay against the current
        UTC clock (tz-naive dates are RFC-required to be GMT, so they
        get UTC attached).  Past dates clamp to 0.0 — "retry now", not
        a negative sleep.  Anything unparseable (or a non-finite
        number) yields None rather than a wrong hint.
        """
        value = value.strip()
        try:
            delay = float(value)
        except ValueError:
            try:
                when = parsedate_to_datetime(value)
            except (TypeError, ValueError):
                return None
            if when is None:  # pre-3.10 parsedate returns None on junk
                return None
            if when.tzinfo is None:
                when = when.replace(tzinfo=timezone.utc)
            delay = (when - datetime.now(timezone.utc)).total_seconds()
        if not math.isfinite(delay):
            return None
        return max(0.0, delay)

    # -- API -------------------------------------------------------------

    def health(self, *, deep: bool = False) -> dict:
        """GET /healthz (``deep=True`` adds queue depth, executor
        liveness and the store writability probe — ok vs degraded)."""
        return self._get_json("/healthz?deep=1" if deep else "/healthz")

    def stats(self) -> dict:
        """GET /v1/stats."""
        return self._get_json("/v1/stats")

    def metrics(self) -> str:
        """GET /v1/metrics (Prometheus text)."""
        def fetch() -> str:
            status, headers, data = self._request("GET", "/v1/metrics")
            if status >= 400:
                raise self._error(status, headers, data)
            return data.decode("utf-8")

        return self._retrying(fetch, key="/v1/metrics")

    def submit(self, request: dict) -> dict:
        """POST /v1/jobs; returns the job document (with ``created``).

        ``request`` is a plain :class:`~repro.experiments.api.SuiteRequest`
        dict, e.g. ``{"sections": ["table1"], "scale": 0.001}``.  Raises
        :class:`ServiceError` with ``retry_after`` set on a 429.

        Deliberately **not** retried on connection failure: the server
        may have accepted a submission whose response was lost, and a
        blind repeat is only safe because *this* server coalesces by
        digest — a guarantee the transport layer should not assume.
        Callers who want at-least-once semantics resubmit explicitly
        (the digest makes that a no-op on this service).
        """
        return self._json("POST", "/v1/jobs", body=request)

    def job(self, job_id: str) -> dict:
        """GET /v1/jobs/{id}."""
        return self._get_json(f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """GET /v1/jobs."""
        return self._get_json("/v1/jobs")["jobs"]

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll_interval: float = 0.2) -> dict:
        """Poll until the job is ``done``/``failed``; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s")
            time.sleep(poll_interval)

    def events(self, job_id: str, *,
               timeout: float | None = None) -> Iterator[dict]:
        """Stream the job's journal events (NDJSON), ending after the
        server's synthetic ``job-end`` event.

        The connection stays open for the stream's lifetime;
        ``timeout`` bounds the *whole stream* via the server-side
        ``?timeout=`` knob (the socket timeout is stretched to match).
        """
        path = f"/v1/jobs/{job_id}/events"
        socket_timeout = self.timeout
        if timeout is not None:
            path += f"?timeout={timeout:g}"
            socket_timeout = timeout + self.timeout

        def connect() -> tuple:
            connection = self._connect(timeout=socket_timeout)
            try:
                connection.request("GET", path,
                                   headers={"X-Tenant": self.tenant})
                return connection, connection.getresponse()
            except BaseException:
                connection.close()
                raise

        # Establishing the stream is idempotent (nothing has been
        # consumed yet) and retried; once events flow, a dropped
        # connection ends the iterator — the caller decides whether
        # replaying the stream from the top is acceptable.
        connection, response = self._retrying(connect, key=path)
        try:
            if response.status >= 400:
                data = response.read()
                lowered = {k.lower(): v for k, v in response.getheaders()}
                raise self._error(response.status, lowered, data)
            buffer = b""
            while True:
                # read1, not read: a plain read(n) on the buffered
                # response blocks until n bytes or EOF, holding live
                # events hostage until the server closes the stream.
                chunk = response.read1(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        continue
                    if isinstance(entry, dict):
                        yield entry
        finally:
            connection.close()

    def watch(self, job_id: str, *, stream=None,
              timeout: float | None = None):
        """Follow a job with a live progress meter (remote ``--progress``).

        Feeds :meth:`events` through the shared
        :func:`~repro.obs.progress.drive_meter`; returns the closed
        meter and, as a side effect, blocks until the job ends.
        """
        from repro.obs.progress import drive_meter

        return drive_meter(self.events(job_id, timeout=timeout),
                           stream=stream if stream is not None
                           else sys.stderr)

    def report(self, job_id: str) -> bytes:
        """GET /v1/jobs/{id}/report — the report's exact bytes."""
        def fetch() -> bytes:
            status, headers, data = self._request(
                "GET", f"/v1/jobs/{job_id}/report")
            if status >= 400:
                raise self._error(status, headers, data)
            return data

        return self._retrying(fetch, key=f"/v1/jobs/{job_id}/report")

    def report_json(self, job_id: str) -> dict:
        """GET /v1/jobs/{id}/report.json, parsed."""
        return self._get_json(f"/v1/jobs/{job_id}/report.json")


# ----------------------------------------------------------------------
# Module CLI
# ----------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Talk to a running repro service.")
    parser.add_argument("--url", default="http://127.0.0.1:8077",
                        help="service base URL (default %(default)s)")
    parser.add_argument("--tenant", default="default",
                        help="tenant name sent as X-Tenant")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request socket timeout (seconds)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("health", help="liveness check")
    commands.add_parser("stats", help="queue/job summary")
    commands.add_parser("jobs", help="list known jobs")

    submit = commands.add_parser("submit", help="submit a suite run")
    submit.add_argument("--sections", nargs="+", default=None,
                        help="report sections (default: all)")
    submit.add_argument("--scale", type=float, default=None,
                        help="workload scale")
    submit.add_argument("--seed", type=int, default=None, help="base seed")
    submit.add_argument("--quantum-refs", type=int, default=None,
                        help="references per scheduling quantum")
    submit.add_argument("--engine", default=None,
                        help="replay engine (classic/fast)")
    submit.add_argument("--charts", action="store_true",
                        help="include ASCII charts in the report")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes")
    submit.add_argument("--watch", action="store_true",
                        help="stream events with a progress meter "
                             "(implies --wait)")
    submit.add_argument("--wait-timeout", type=float, default=600.0,
                        help="seconds to wait with --wait/--watch")
    submit.add_argument("--report-out", default=None, metavar="PATH",
                        help="after the job finishes, write the report "
                             "bytes here (implies --wait)")

    for name, text in (("status", "one job's state"),
                       ("wait", "block until a job finishes"),
                       ("events", "stream a job's journal (NDJSON)"),
                       ("report", "print a finished job's report")):
        sub = commands.add_parser(name, help=text)
        sub.add_argument("job_id", help="job id (the request digest)")
        if name == "wait":
            sub.add_argument("--wait-timeout", type=float, default=600.0,
                             help="seconds before giving up")
    return parser


def _submit_payload(args: argparse.Namespace) -> dict:
    payload: dict = {}
    if args.sections is not None:
        payload["sections"] = args.sections
    for name in ("scale", "seed", "quantum_refs", "engine"):
        value = getattr(args, name)
        if value is not None:
            payload[name] = value
    if args.charts:
        payload["charts"] = True
    return payload


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.service.client``."""
    args = _build_parser().parse_args(argv)
    client = ServiceClient(args.url, tenant=args.tenant,
                           timeout=args.timeout)
    try:
        if args.command == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
        elif args.command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.command == "jobs":
            for record in client.jobs():
                print(f"{record['id']}  {record['state']:>7}  "
                      f"{record['describe']}")
        elif args.command == "submit":
            record = client.submit(_submit_payload(args))
            verb = "created" if record.get("created") else "coalesced"
            print(f"{record['id']}  {verb}", file=sys.stderr)
            wait = args.wait or args.watch or args.report_out
            if args.watch:
                client.watch(record["id"], timeout=args.wait_timeout)
                record = client.job(record["id"])
            elif wait:
                record = client.wait(record["id"],
                                     timeout=args.wait_timeout)
            if wait:
                print(f"{record['id']}  {record['state']}", file=sys.stderr)
                if record["state"] == "failed":
                    print(f"error: {record['error']}", file=sys.stderr)
                    return 1
                if args.report_out:
                    data = client.report(record["id"])
                    if args.report_out == "-":
                        sys.stdout.buffer.write(data)
                    else:
                        with open(args.report_out, "wb") as out:
                            out.write(data)
            else:
                print(record["id"])
        elif args.command == "status":
            print(json.dumps(client.job(args.job_id), indent=2,
                             sort_keys=True))
        elif args.command == "wait":
            record = client.wait(args.job_id, timeout=args.wait_timeout)
            print(f"{record['id']}  {record['state']}")
            if record["state"] == "failed":
                return 1
        elif args.command == "events":
            for entry in client.events(args.job_id):
                print(json.dumps(entry, sort_keys=True))
        elif args.command == "report":
            sys.stdout.buffer.write(client.report(args.job_id))
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.retry_after is not None:
            print(f"retry after {exc.retry_after:g}s", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
