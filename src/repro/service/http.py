"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

The service deliberately avoids web frameworks: the container ships no
third-party HTTP stack, and the API surface is small enough that a
hand-rolled request parser is simpler than a dependency gate.  This
module is that parser plus response helpers — ~one screen of protocol,
shared by every endpoint in :mod:`repro.service.server`.

Scope (and non-goals): one request per connection (``Connection:
close``), which sidesteps keep-alive bookkeeping and makes streaming
responses trivial — the body simply ends when the server closes the
socket, exactly what SSE/NDJSON event streams want.  No TLS, no chunked
*request* bodies, no multipart: submissions are small JSON documents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

import asyncio

__all__ = ["Request", "HttpError", "read_request", "render_response",
           "json_bytes", "STATUS_PHRASES", "MAX_BODY_BYTES"]

#: Largest request body accepted (submissions are ~hundreds of bytes).
MAX_BODY_BYTES = 1 << 20

#: Reason phrases for every status the service emits.
STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(Exception):
    """An HTTP-status-shaped failure; the server renders it as a JSON
    error body with the given status and optional extra headers."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str                       #: raw request target (path?query)
    path: str                         #: decoded path, no query
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)  #: lower-cased keys
    body: bytes = b""

    def json(self) -> dict:
        """The body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "expected a JSON request body")
        try:
            document = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}")
        if not isinstance(document, dict):
            raise HttpError(400, "request body must be a JSON object")
        return document

    @property
    def tenant(self) -> str:
        """The submitting tenant: ``X-Tenant`` header, ``tenant`` query
        parameter, or ``"default"``."""
        return (self.headers.get("x-tenant")
                or self.query.get("tenant")
                or "default").strip() or "default"

    def wants_sse(self) -> bool:
        """Whether an event-stream endpoint should speak SSE (otherwise
        NDJSON): ``Accept: text/event-stream`` or ``?format=sse``."""
        if self.query.get("format") == "sse":
            return True
        accept = self.headers.get("accept", "")
        return "text/event-stream" in accept


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Malformed framing raises :class:`HttpError` (the server answers it
    and closes); anything pathological enough to break the stream reader
    (an overlong line) surfaces the same way.
    """
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):
        raise HttpError(400, "malformed request line")
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version}")
    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(400, "malformed header block")
        if raw in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "malformed header")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length!r}")
        if n < 0:
            raise HttpError(400, f"bad Content-Length: {length!r}")
        if n > MAX_BODY_BYTES:
            raise HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")
    elif headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    head_only: bool = False,
) -> bytes:
    """One complete ``Connection: close`` response as bytes.

    With ``head_only`` (streaming endpoints) the status line and headers
    are rendered *without* a Content-Length — the body is whatever the
    caller writes afterwards, terminated by closing the connection.
    """
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if not head_only:
        lines.append(f"Content-Length: {len(body)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head if head_only else head + body


def json_bytes(document: object) -> bytes:
    """Deterministic JSON encoding for response bodies."""
    return (json.dumps(document, sort_keys=True, indent=2) + "\n").encode(
        "utf-8")
