"""``python -m repro.service`` — the service client CLI.

Delegates to :func:`repro.service.client.main`; running the package
(rather than ``python -m repro.service.client``) avoids runpy's
double-import warning, since the package ``__init__`` already imports
the client module.
"""

import sys

from repro.service.client import main

if __name__ == "__main__":
    sys.exit(main())
