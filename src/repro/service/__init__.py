"""Run-as-a-service: an HTTP front end for the reproduction pipeline.

``repro-serve`` turns the experiments engine into a small multi-tenant
job service — submit a report suite over HTTP, watch its engine journal
stream live, fetch the finished report — with the repo's byte-identity
bar intact: a report fetched from the service is byte-for-byte the
report the same suite produces offline.

Four pieces, all stdlib:

* :mod:`repro.service.http` — a minimal asyncio HTTP/1.1 layer
  (``Connection: close``, which makes event streams trivial);
* :mod:`repro.service.manager` — the job engine: a coalescing queue
  (job id == request content address, so identical submissions share
  one run), per-tenant quotas, bounded depth with 429 + Retry-After,
  worker threads driving :func:`repro.experiments.api.run_suite` into a
  shared :class:`~repro.experiments.cache.ResultStore`;
* :mod:`repro.service.server` — the ``/v1`` routes, SSE/NDJSON journal
  streams via :class:`~repro.exec.journal.JournalTail`, per-route
  metrics through :mod:`repro.obs`;
* :mod:`repro.service.client` — a stdlib client (and ``python -m
  repro.service.client``) used by the tests, the CI service job and the
  throughput benchmark.

See ``docs/SERVICE.md`` for the API reference and a walkthrough.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.manager import (
    Busy,
    Job,
    JobManager,
    QueueFull,
    QuotaExceeded,
)
from repro.service.server import ServerHandle, ServiceServer, \
    start_in_background

__all__ = [
    "Busy",
    "Job",
    "JobManager",
    "QueueFull",
    "QuotaExceeded",
    "ServerHandle",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "start_in_background",
]
